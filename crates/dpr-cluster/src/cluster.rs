//! Cluster assembly: wire up workers, metadata, finder, ownership and the
//! bus into a running D-FASTER or D-Redis deployment.

use crate::client::SessionHandle;
use crate::dfaster::FasterShard;
use crate::dredis::RedisShard;
use crate::manager::ClusterManager;
use crate::transport::{EndpointId, SimNetwork};
use crate::worker::{ShardStore, Worker, WorkerConfig};
use dpr_core::{
    Clock, DprFinderMode, RecoverabilityLevel, Result, SessionId, ShardId, SystemClock,
};
use dpr_metadata::{Cut, MetadataStore, OwnershipTable, Partitioner, SimulatedSqlStore};
use dpr_redis::{AofPolicy, RedisConfig, RedisStore};
use dpr_storage::{MemBlobStore, MemLogDevice, StorageProfile};
use libdpr::{ApproximateFinder, DprFinder, ExactFinder, HybridFinder};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Which cache-store backs the shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterKind {
    /// D-FASTER (§5): deep integration, non-blocking restore.
    DFaster,
    /// D-Redis (§6): unmodified Redis-like store behind the libDPR wrapper.
    DRedis,
}

/// Full deployment configuration — the experiment axes of §7.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Store kind.
    pub kind: ClusterKind,
    /// Number of shard workers (the paper's #VMs).
    pub shards: usize,
    /// Virtual partitions for ownership mapping (§5.3).
    pub partitions: u32,
    /// Checkpoint period (`None` = no checkpoints).
    pub checkpoint_interval: Option<Duration>,
    /// Storage backend profile (null / local SSD / cloud SSD).
    pub storage: StorageProfile,
    /// Cut-finding algorithm.
    pub finder_mode: DprFinderMode,
    /// One-way network latency on the bus.
    pub network_latency: Duration,
    /// Per-statement metadata-store latency (the Azure SQL round trip).
    pub metadata_latency: Duration,
    /// Metadata-store partitions: `>1` backs the cluster with the
    /// lock-partitioned [`dpr_metadata::PartitionedSqlStore`] so DPR-table
    /// writes from many shards stop serialising on one table lock; `<=1`
    /// keeps the monolithic [`SimulatedSqlStore`].
    pub metadata_partitions: usize,
    /// Recoverability level (§7.6).
    pub recoverability: RecoverabilityLevel,
    /// Executor threads per worker.
    pub executors_per_worker: usize,
    /// FASTER memory budget (records) per shard.
    pub memory_budget_records: usize,
    /// FASTER index buckets per shard.
    pub index_buckets: usize,
    /// How often the finder service recomputes the cut.
    pub finder_interval: Duration,
    /// Per-op ownership validation.
    pub validate_ownership: bool,
    /// Insert a pass-through proxy hop in front of every worker (the
    /// Fig. 17/18 "Redis + Proxy" configuration).
    pub extra_proxy_hop: bool,
    /// Bound on each FASTER shard's unflushed (volatile) log region, in
    /// records. Applied only when checkpoints are enabled; makes device
    /// speed throughput-relevant via append backpressure (§7.2's
    /// "thrashing" regime). `None` = unbounded.
    pub unflushed_limit_records: Option<u64>,
    /// Per-worker duplicate-suppression window for retransmitted batches
    /// (see [`crate::worker::WorkerConfig::dedupe_window`]); `0` disables
    /// it. The chaos harness enables it so client retransmission over
    /// lossy links stays exactly-once.
    pub dedupe_window: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            kind: ClusterKind::DFaster,
            shards: 4,
            partitions: 64,
            checkpoint_interval: Some(Duration::from_millis(100)),
            storage: StorageProfile::Null,
            finder_mode: DprFinderMode::Approximate,
            network_latency: Duration::ZERO,
            metadata_latency: Duration::ZERO,
            metadata_partitions: 8,
            recoverability: RecoverabilityLevel::Dpr,
            executors_per_worker: 2,
            memory_budget_records: 1 << 22,
            index_buckets: 1 << 16,
            finder_interval: Duration::from_millis(5),
            validate_ownership: true,
            extra_proxy_hop: false,
            unflushed_limit_records: Some(1 << 18),
            dedupe_window: 0,
        }
    }
}

/// A running cluster.
pub struct Cluster {
    config: ClusterConfig,
    net: Arc<SimNetwork>,
    meta: Arc<dyn MetadataStore>,
    ownership: Arc<OwnershipTable>,
    finder: Arc<dyn DprFinder>,
    workers: Vec<Arc<Worker>>,
    worker_endpoints: Arc<RwLock<HashMap<ShardId, EndpointId>>>,
    manager: ClusterManager,
    cut_cache: Arc<RwLock<Cut>>,
    next_session: AtomicU64,
    shutdown: Arc<AtomicBool>,
}

impl Cluster {
    /// Start a cluster per `config`.
    pub fn start(config: ClusterConfig) -> Result<Cluster> {
        let net = SimNetwork::new(config.network_latency);
        let meta: Arc<dyn MetadataStore> = if config.metadata_partitions > 1 {
            Arc::new(dpr_metadata::PartitionedSqlStore::with_latency(
                config.metadata_partitions,
                config.metadata_latency,
            ))
        } else {
            Arc::new(SimulatedSqlStore::with_latency(config.metadata_latency))
        };
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
        let ownership = Arc::new(OwnershipTable::new(
            Partitioner::Hash {
                partitions: config.partitions,
            },
            clock,
            Duration::from_secs(10),
        ));
        let finder: Arc<dyn DprFinder> = match config.finder_mode {
            DprFinderMode::Exact => Arc::new(ExactFinder::new(meta.clone())),
            DprFinderMode::Approximate => Arc::new(ApproximateFinder::new(meta.clone())),
            DprFinderMode::Hybrid => Arc::new(HybridFinder::new(meta.clone())),
        };

        let worker_config = WorkerConfig {
            checkpoint_interval: match config.recoverability {
                RecoverabilityLevel::None | RecoverabilityLevel::Synchronous => None,
                _ => config.checkpoint_interval,
            },
            dpr_enabled: config.recoverability == RecoverabilityLevel::Dpr,
            sync_commit: config.recoverability == RecoverabilityLevel::Synchronous
                && config.kind == ClusterKind::DFaster,
            executors: match config.kind {
                ClusterKind::DFaster => config.executors_per_worker,
                // The store is single-threaded anyway.
                ClusterKind::DRedis => 1,
            },
            validate_ownership: config.validate_ownership,
            fast_forward: true,
            dedupe_window: config.dedupe_window,
        };

        let mut workers = Vec::with_capacity(config.shards);
        let mut endpoints = HashMap::new();
        for i in 0..config.shards {
            let shard = ShardId(i as u32);
            let store = build_store(&config, shard)?;
            let worker = Worker::start(
                shard,
                store,
                net.clone(),
                ownership.clone(),
                meta.clone(),
                finder.clone(),
                worker_config.clone(),
            )?;
            let public_endpoint = if config.extra_proxy_hop {
                crate::proxy::start_proxy(&net, worker.endpoint())
            } else {
                worker.endpoint()
            };
            endpoints.insert(shard, public_endpoint);
            workers.push(worker);
        }
        let shard_ids: Vec<ShardId> = workers.iter().map(|w| w.shard()).collect();
        ownership.assign_round_robin(&shard_ids);

        let cut_cache = Arc::new(RwLock::new(Cut::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        if config.recoverability == RecoverabilityLevel::Dpr {
            let finder_weak: Weak<dyn DprFinder> = Arc::downgrade(&finder);
            let cache = cut_cache.clone();
            let stop = shutdown.clone();
            let interval = config.finder_interval;
            std::thread::Builder::new()
                .name("dpr-finder".into())
                .spawn(move || loop {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    let Some(finder) = finder_weak.upgrade() else {
                        return;
                    };
                    let _ = finder.refresh();
                    if let Ok(cut) = finder.current_cut() {
                        *cache.write() = cut;
                    }
                    drop(finder);
                    std::thread::sleep(interval);
                })
                .expect("spawn finder service");
        }

        Ok(Cluster {
            manager: ClusterManager::new(meta.clone()),
            config,
            net,
            meta,
            ownership,
            finder,
            workers,
            worker_endpoints: Arc::new(RwLock::new(endpoints)),
            cut_cache,
            next_session: AtomicU64::new(1),
            shutdown,
        })
    }

    /// Open a client session (dedicated-client mode).
    pub fn open_session(&self) -> Result<SessionHandle> {
        self.open_session_inner(None)
    }

    /// Open a session co-located with worker `idx`: batches for that shard
    /// execute directly on the calling thread (§5.2).
    pub fn open_session_colocated(&self, idx: usize) -> Result<SessionHandle> {
        self.open_session_inner(Some(self.workers[idx].clone()))
    }

    fn open_session_inner(&self, local: Option<Arc<Worker>>) -> Result<SessionHandle> {
        let id = SessionId(self.next_session.fetch_add(1, Ordering::AcqRel));
        Ok(SessionHandle::new(
            id,
            self.meta.world_line()?,
            self.net.clone(),
            self.ownership.clone(),
            self.meta.clone(),
            self.worker_endpoints.clone(),
            local,
        ))
    }

    /// The latest cut published by the finder service.
    #[must_use]
    pub fn current_cut(&self) -> Cut {
        self.cut_cache.read().clone()
    }

    /// A cheap cut reader for [`SessionHandle::wait_all_committed`].
    pub fn cut_source(&self) -> impl Fn() -> Cut + Send + 'static {
        let cache = self.cut_cache.clone();
        move || cache.read().clone()
    }

    /// Inject a failure (Fig. 16's methodology) and return once recovery is
    /// underway; workers roll back asynchronously. Shim for
    /// [`Cluster::inject_failure_at`] blaming worker 0.
    pub fn inject_failure(&self) -> Result<()> {
        self.inject_failure_at(0)
    }

    /// Inject a failure attributed to the worker at `idx`. Per §4.1 the
    /// recovery protocol is cluster-wide regardless of which worker
    /// crashed — every worker rolls back to the guaranteed cut — but the
    /// `recovery_begin` span names the blamed shard, and the crashed
    /// worker discards its volatile duplicate-suppression state as a real
    /// process restart would.
    pub fn inject_failure_at(&self, idx: usize) -> Result<()> {
        let worker = self
            .workers
            .get(idx)
            .ok_or_else(|| dpr_core::DprError::Invalid(format!("no worker at index {idx}")))?;
        worker.simulate_crash_restart();
        self.manager.trigger_failure_at(Some(worker.shard()))?;
        Ok(())
    }

    /// Wait for any in-flight recovery to complete.
    pub fn wait_recovered(&self, timeout: Duration) -> Result<()> {
        self.manager.wait_recovery_complete(timeout)
    }

    /// The workers (tests/benchmarks).
    #[must_use]
    pub fn workers(&self) -> &[Arc<Worker>] {
        &self.workers
    }

    /// The shard owning `key` (benchmark key-pool construction).
    pub fn owner_of(&self, key: &dpr_core::Key) -> Result<ShardId> {
        self.ownership.owner_of(key)
    }

    /// Sum of ops executed across workers.
    #[must_use]
    pub fn total_executed(&self) -> u64 {
        self.workers.iter().map(|w| w.executed_ops()).sum()
    }

    /// The deployment configuration.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The shared metadata store (tests).
    #[must_use]
    pub fn metadata(&self) -> &Arc<dyn MetadataStore> {
        &self.meta
    }

    /// The simulated network (chaos harness installs link faults here).
    #[must_use]
    pub fn network(&self) -> &Arc<SimNetwork> {
        &self.net
    }

    /// The bus endpoint of the worker at `idx` (chaos harness targets
    /// link faults at it).
    #[must_use]
    pub fn worker_endpoint(&self, idx: usize) -> Option<EndpointId> {
        let shard = self.workers.get(idx)?.shard();
        self.worker_endpoints.read().get(&shard).copied()
    }

    /// The finder (tests/ablations).
    #[must_use]
    pub fn finder(&self) -> &Arc<dyn DprFinder> {
        &self.finder
    }

    /// Migrate one virtual partition from the worker at `from_idx` to the
    /// worker at `to_idx` (§5.3). Ownership transfer is deferred to a
    /// checkpoint boundary: the old owner renounces, seals its current
    /// version, the data is copied and made durable at the new owner, and
    /// only then is the partition claimed. Clients retry while the
    /// partition is un-owned. Returns the number of keys moved.
    ///
    /// Failure *during* a migration is out of scope (the paper defers the
    /// full transfer protocol to Shadowfax).
    pub fn migrate_partition(
        &self,
        vp: dpr_metadata::VirtualPartition,
        from_idx: usize,
        to_idx: usize,
    ) -> Result<usize> {
        let from = &self.workers[from_idx];
        let to = &self.workers[to_idx];
        // 1. Renounce: the partition is now un-owned; in-flight writes to it
        //    at the old owner start failing validation.
        self.ownership.renounce(vp, from.shard())?;
        // 2. Seal the last version that contained the partition at the old
        //    owner, so ownership is static within versions.
        wait_local_durable(from.store().as_ref(), Duration::from_secs(10))?;
        // 3. Copy the partition's live data.
        let partitioner = self.ownership.partitioner().clone();
        let moved: Vec<crate::message::ClusterOp> = from
            .store()
            .scan_live()?
            .into_iter()
            .filter(|(k, _)| partitioner.partition_of(k) == vp)
            .map(|(k, v)| crate::message::ClusterOp::Upsert(k, v))
            .collect();
        let count = moved.len();
        if !moved.is_empty() {
            // Direct store write (bypasses ownership validation) under a
            // reserved migration session id.
            let migration_session = SessionId(u64::MAX - u64::from(to.shard().0));
            to.store().execute_batch(migration_session, &moved)?;
        }
        // 4. Make the migrated data durable at the new owner before serving.
        wait_local_durable(to.store().as_ref(), Duration::from_secs(10))?;
        // 5. Claim: clients' retries now resolve to the new owner.
        self.ownership.claim(vp, to.shard())?;
        Ok(count)
    }

    /// Add a worker to the running cluster and rebalance a share of the
    /// virtual partitions onto it ("adding a worker is equivalent to adding
    /// a row in the DPR table", §5.3). Returns the new shard id.
    pub fn add_worker(&mut self) -> Result<ShardId> {
        let new_idx = self.workers.len();
        let shard = ShardId(new_idx as u32);
        let store = build_store(&self.config, shard)?;
        let worker_config = crate::worker::WorkerConfig {
            checkpoint_interval: match self.config.recoverability {
                RecoverabilityLevel::None | RecoverabilityLevel::Synchronous => None,
                _ => self.config.checkpoint_interval,
            },
            dpr_enabled: self.config.recoverability == RecoverabilityLevel::Dpr,
            sync_commit: self.config.recoverability == RecoverabilityLevel::Synchronous
                && self.config.kind == ClusterKind::DFaster,
            executors: match self.config.kind {
                ClusterKind::DFaster => self.config.executors_per_worker,
                ClusterKind::DRedis => 1,
            },
            validate_ownership: self.config.validate_ownership,
            fast_forward: true,
            dedupe_window: self.config.dedupe_window,
        };
        let worker = Worker::start(
            shard,
            store,
            self.net.clone(),
            self.ownership.clone(),
            self.meta.clone(),
            self.finder.clone(),
            worker_config,
        )?;
        let public = if self.config.extra_proxy_hop {
            crate::proxy::start_proxy(&self.net, worker.endpoint())
        } else {
            worker.endpoint()
        };
        self.worker_endpoints.write().insert(shard, public);
        self.workers.push(worker);
        // Rebalance: every partition that hashes to the new worker under
        // round-robin over the new count moves to it.
        let partitions = self.config.partitions;
        let n = self.workers.len();
        for p in 0..partitions {
            if (p as usize) % n == new_idx {
                let vp = dpr_metadata::VirtualPartition(p);
                let owner = self.ownership.owner_of_partition(vp)?;
                let from_idx = self
                    .workers
                    .iter()
                    .position(|w| w.shard() == owner)
                    .ok_or_else(|| dpr_core::DprError::Invalid("unknown owner".into()))?;
                self.migrate_partition(vp, from_idx, new_idx)?;
            }
        }
        Ok(shard)
    }

    /// Remove the worker at `idx` from the cluster: migrate all its
    /// partitions to the remaining workers, then drop its DPR-table row
    /// ("non-empty workers first migrate all keys before leaving", §5.3).
    pub fn remove_worker(&mut self, idx: usize) -> Result<()> {
        let shard = self.workers[idx].shard();
        let targets: Vec<usize> = (0..self.workers.len()).filter(|&i| i != idx).collect();
        if targets.is_empty() {
            return Err(dpr_core::DprError::Invalid(
                "cannot remove the last worker".into(),
            ));
        }
        let owned = self.ownership.partitions_of(shard);
        for (i, vp) in owned.into_iter().enumerate() {
            self.migrate_partition(vp, idx, targets[i % targets.len()])?;
        }
        self.meta.remove_worker(shard)?;
        self.worker_endpoints.write().remove(&shard);
        let worker = self.workers.remove(idx);
        worker.stop();
        Ok(())
    }

    /// Stop all background threads.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        for w in &self.workers {
            w.stop();
        }
        self.net.shutdown();
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Wait for everything currently executed on `store` to become locally
/// durable (repeatedly requesting commits until the version catches up).
fn wait_local_durable(store: &dyn ShardStore, timeout: Duration) -> Result<()> {
    use std::time::Instant;
    let target = store.current_version();
    let deadline = Instant::now() + timeout;
    while store.durable_version() < target {
        store.request_commit(None);
        if Instant::now() > deadline {
            return Err(dpr_core::DprError::Timeout);
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    Ok(())
}

/// Build one shard's cache-store per the cluster configuration.
fn build_store(config: &ClusterConfig, shard: ShardId) -> Result<Arc<dyn ShardStore>> {
    Ok(match config.kind {
        ClusterKind::DFaster => {
            let device = Arc::new(MemLogDevice::with_profile(config.storage));
            let blobs = Arc::new(MemBlobStore::with_latency(config.storage.latency()));
            let kv = dpr_faster::FasterKv::new(
                dpr_faster::FasterConfig {
                    index_buckets: config.index_buckets,
                    memory_budget_records: config.memory_budget_records,
                    auto_maintenance: true,
                    // Without checkpoints the log is "entirely mutable and we
                    // do not invoke the checkpointing code path" (§7.2) — no
                    // flushing, no backpressure.
                    unflushed_limit_records: if config.checkpoint_interval.is_some()
                        && config.recoverability != RecoverabilityLevel::None
                    {
                        config.unflushed_limit_records
                    } else {
                        None
                    },
                    ..dpr_faster::FasterConfig::default()
                },
                device,
                blobs,
            );
            Arc::new(FasterShard::new(shard, kv))
        }
        ClusterKind::DRedis => {
            let blobs = Arc::new(MemBlobStore::with_latency(config.storage.latency()));
            let (aof_policy, aof) = match config.recoverability {
                RecoverabilityLevel::Synchronous => (
                    AofPolicy::Always,
                    Some(Arc::new(MemLogDevice::with_profile(config.storage)) as _),
                ),
                RecoverabilityLevel::Eventual => (
                    AofPolicy::EverySec,
                    Some(Arc::new(MemLogDevice::with_profile(config.storage)) as _),
                ),
                _ => (AofPolicy::Off, None),
            };
            let store = RedisStore::new(RedisConfig { aof: aof_policy }, blobs, aof)?;
            Arc::new(RedisShard::new(shard, store))
        }
    })
}
