//! The in-process message bus with configurable one-way latency.
//!
//! Stand-in for the paper's TCP + accelerated networking (see DESIGN.md):
//! endpoints register an inbox; `send` either delivers immediately
//! (zero-latency configuration) or schedules delivery through a delay-heap
//! pump thread. Per-message delivery cost is what makes client batching
//! (`b`) and windowing (`w`) matter, reproducing the trade-offs of Fig. 13.
//!
//! # Fault injection
//!
//! The chaos harness (`dpr-chaos`) perturbs individual links with
//! [`LinkFault`]s keyed by destination endpoint: extra delay (slow link),
//! probabilistic drop (lossy link), or a full partition that parks messages
//! until the fault is cleared. All faulted scheduling preserves per-link
//! FIFO: a message to endpoint `E` is never delivered before an earlier
//! message to `E` that is still queued, even across fault set/clear
//! transitions — matching TCP's in-order guarantee that the DPR session
//! protocol assumes. Drops are decided by a deterministic xorshift PRNG
//! seeded via [`SimNetwork::set_fault_seed`] so chaos schedules replay
//! identically for a given seed.

use crate::message::Message;
use crossbeam::channel::{unbounded, Receiver, Sender};
use dpr_core::{DprError, Result};
use parking_lot::{Condvar, Mutex, RwLock};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Address of a worker or client on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointId(pub u64);

/// Fault applied to every message addressed to one endpoint.
///
/// Installed with [`SimNetwork::set_link_fault`]; the default value is a
/// healthy link. Faults compose: a link can be slow *and* lossy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Added to the network's base one-way latency.
    pub extra_delay: Duration,
    /// Probability in `[0, 1)` that a message is silently dropped
    /// (decided by the deterministic fault PRNG).
    pub drop_rate: f64,
    /// Park messages instead of delivering; released in order when the
    /// fault is cleared or replaced by a non-partitioned fault.
    pub partitioned: bool,
}

impl Default for LinkFault {
    fn default() -> Self {
        LinkFault {
            extra_delay: Duration::ZERO,
            drop_rate: 0.0,
            partitioned: false,
        }
    }
}

struct Delayed {
    deliver_at: Instant,
    seq: u64,
    to: EndpointId,
    msg: Message,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

struct PumpState {
    heap: BinaryHeap<Reverse<Delayed>>,
    /// Active per-destination faults; absent entry = healthy link.
    faults: HashMap<EndpointId, LinkFault>,
    /// Messages held behind partitioned links, in send order.
    parked: HashMap<EndpointId, VecDeque<Message>>,
    /// Latest scheduled delivery per destination; later sends never
    /// schedule before this, which is what preserves per-link FIFO when a
    /// fault's delay shrinks or clears mid-stream.
    fifo_floor: HashMap<EndpointId, Instant>,
    /// xorshift64* state for drop decisions (never zero).
    rng: u64,
}

impl PumpState {
    /// Next drop decision in `[0, 1)` from the deterministic fault PRNG.
    fn next_unit(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The bus.
pub struct SimNetwork {
    latency: Duration,
    endpoints: RwLock<HashMap<EndpointId, Sender<Message>>>,
    pump: Mutex<PumpState>,
    pump_wake: Condvar,
    seq: AtomicU64,
    shutdown: AtomicBool,
    next_endpoint: AtomicU64,
    /// Sticky flag: set the first time a link fault is installed. Once
    /// set, zero-latency sends stop short-circuiting and go through the
    /// pump so FIFO order holds relative to still-queued faulted traffic.
    ever_faulted: AtomicBool,
    /// Whether the pump thread is running (spawned at construction for
    /// non-zero latency, lazily on first fault otherwise).
    pump_running: AtomicBool,
    dropped: AtomicU64,
}

impl SimNetwork {
    /// Create a bus with the given one-way message latency. A latency of
    /// zero delivers synchronously with no pump thread involvement (until
    /// a link fault is installed, which starts the pump).
    pub fn new(latency: Duration) -> Arc<SimNetwork> {
        let net = Arc::new(SimNetwork {
            latency,
            endpoints: RwLock::new(HashMap::new()),
            pump: Mutex::new(PumpState {
                heap: BinaryHeap::new(),
                faults: HashMap::new(),
                parked: HashMap::new(),
                fifo_floor: HashMap::new(),
                rng: 0x9E37_79B9_7F4A_7C15,
            }),
            pump_wake: Condvar::new(),
            seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            next_endpoint: AtomicU64::new(0),
            ever_faulted: AtomicBool::new(false),
            pump_running: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
        });
        if !latency.is_zero() {
            net.spawn_pump();
        }
        net
    }

    fn spawn_pump(self: &Arc<Self>) {
        if self.pump_running.swap(true, Ordering::AcqRel) {
            return;
        }
        let weak = Arc::downgrade(self);
        std::thread::Builder::new()
            .name("sim-net-pump".into())
            .spawn(move || loop {
                let Some(net) = weak.upgrade() else { return };
                if net.shutdown.load(Ordering::Acquire) {
                    return;
                }
                net.pump_once();
            })
            .expect("spawn network pump");
    }

    /// Allocate a fresh endpoint and its inbox.
    pub fn register(&self) -> (EndpointId, Receiver<Message>) {
        let id = EndpointId(self.next_endpoint.fetch_add(1, Ordering::AcqRel));
        let (tx, rx) = unbounded();
        self.endpoints.write().insert(id, tx);
        (id, rx)
    }

    /// Send `msg` to `to`, subject to the configured latency and any
    /// installed [`LinkFault`] for the destination.
    pub fn send(&self, to: EndpointId, msg: Message) -> Result<()> {
        if self.shutdown.load(Ordering::Acquire) {
            return Err(DprError::Closed);
        }
        if self.latency.is_zero() && !self.ever_faulted.load(Ordering::Acquire) {
            return self.deliver(to, msg);
        }
        let mut pump = self.pump.lock();
        let fault = pump.faults.get(&to).copied().unwrap_or_default();
        if fault.partitioned {
            pump.parked.entry(to).or_default().push_back(msg);
            crate::metrics::net_parked()
                .set(pump.parked.values().map(VecDeque::len).sum::<usize>() as i64);
            return Ok(());
        }
        if fault.drop_rate > 0.0 && pump.next_unit() < fault.drop_rate {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            crate::metrics::net_dropped().add(1);
            return Ok(());
        }
        self.schedule(&mut pump, to, msg, self.latency + fault.extra_delay);
        crate::metrics::net_inflight().set(pump.heap.len() as i64);
        self.pump_wake.notify_one();
        Ok(())
    }

    /// Queue `msg` for delivery to `to` after `delay`, never ahead of an
    /// earlier message to the same destination (per-link FIFO). Caller
    /// holds the pump lock.
    fn schedule(&self, pump: &mut PumpState, to: EndpointId, msg: Message, delay: Duration) {
        let mut deliver_at = Instant::now() + delay;
        if let Some(&floor) = pump.fifo_floor.get(&to) {
            deliver_at = deliver_at.max(floor);
        }
        pump.fifo_floor.insert(to, deliver_at);
        pump.heap.push(Reverse(Delayed {
            deliver_at,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            to,
            msg,
        }));
    }

    /// Install (or replace) the fault on the link to `to`. Starts the
    /// pump thread if this zero-latency bus never needed one; from then
    /// on all sends go through the delay heap so ordering is preserved
    /// across the healthy/faulted transition.
    pub fn set_link_fault(self: &Arc<Self>, to: EndpointId, fault: LinkFault) {
        self.spawn_pump();
        self.ever_faulted.store(true, Ordering::Release);
        let mut pump = self.pump.lock();
        pump.faults.insert(to, fault);
        if !fault.partitioned {
            self.release_parked(&mut pump, to, fault.extra_delay);
        }
        self.pump_wake.notify_one();
    }

    /// Heal the link to `to`: remove its fault and release any parked
    /// messages, in their original send order, at the base latency.
    pub fn clear_link_fault(&self, to: EndpointId) {
        let mut pump = self.pump.lock();
        pump.faults.remove(&to);
        self.release_parked(&mut pump, to, Duration::ZERO);
        self.pump_wake.notify_one();
    }

    /// Heal every link at once (end of a chaos round).
    pub fn clear_all_link_faults(&self) {
        let mut pump = self.pump.lock();
        pump.faults.clear();
        let targets: Vec<EndpointId> = pump.parked.keys().copied().collect();
        for to in targets {
            self.release_parked(&mut pump, to, Duration::ZERO);
        }
        self.pump_wake.notify_one();
    }

    /// Reseed the deterministic drop PRNG (chaos runs call this once so
    /// the whole fault schedule replays from a single `u64`).
    pub fn set_fault_seed(&self, seed: u64) {
        // xorshift state must be non-zero.
        self.pump.lock().rng = seed | 1;
    }

    /// Messages dropped so far by lossy-link faults.
    #[must_use]
    pub fn dropped_count(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn release_parked(&self, pump: &mut PumpState, to: EndpointId, extra: Duration) {
        if let Some(queue) = pump.parked.remove(&to) {
            for msg in queue {
                self.schedule(pump, to, msg, self.latency + extra);
            }
            crate::metrics::net_parked()
                .set(pump.parked.values().map(VecDeque::len).sum::<usize>() as i64);
        }
    }

    fn deliver(&self, to: EndpointId, msg: Message) -> Result<()> {
        let endpoints = self.endpoints.read();
        match endpoints.get(&to) {
            Some(tx) => tx.send(msg).map_err(|_| DprError::Closed),
            None => Err(DprError::Invalid(format!("unknown endpoint {to:?}"))),
        }
    }

    fn pump_once(&self) {
        let mut due = Vec::new();
        {
            let mut pump = self.pump.lock();
            let now = Instant::now();
            loop {
                match pump.heap.peek() {
                    Some(Reverse(d)) if d.deliver_at <= now => {
                        let Reverse(d) = pump.heap.pop().unwrap();
                        due.push((d.to, d.msg));
                    }
                    Some(Reverse(d)) => {
                        let wait = d.deliver_at - now;
                        if due.is_empty() {
                            self.pump_wake
                                .wait_for(&mut pump, wait.min(Duration::from_micros(200)));
                        }
                        break;
                    }
                    None => {
                        if due.is_empty() {
                            self.pump_wake.wait_for(&mut pump, Duration::from_millis(5));
                        }
                        break;
                    }
                }
            }
        }
        if !due.is_empty() {
            crate::metrics::net_inflight().set(self.pump.lock().heap.len() as i64);
        }
        for (to, msg) in due {
            let _ = self.deliver(to, msg);
        }
    }

    /// Tear down; subsequent sends fail.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.pump_wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Message, ResponseMsg};

    fn response(first_serial: u64) -> Message {
        Message::Response(ResponseMsg {
            session: None,
            first_serial,
            op_count: 1,
            outcome: Err(DprError::Timeout),
        })
    }

    #[test]
    fn zero_latency_delivers_synchronously() {
        let net = SimNetwork::new(Duration::ZERO);
        let (id, rx) = net.register();
        net.send(id, response(7)).unwrap();
        match rx.try_recv().unwrap() {
            Message::Response(r) => assert_eq!(r.first_serial, 7),
            Message::Request(_) => panic!("wrong message"),
        }
    }

    #[test]
    fn latency_delays_delivery() {
        let net = SimNetwork::new(Duration::from_millis(20));
        let (id, rx) = net.register();
        let start = Instant::now();
        net.send(id, response(1)).unwrap();
        assert!(rx.try_recv().is_err(), "not delivered immediately");
        let _ = rx.recv_timeout(Duration::from_millis(500)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(18));
    }

    #[test]
    fn messages_ordered_per_latency_class() {
        let net = SimNetwork::new(Duration::from_millis(5));
        let (id, rx) = net.register();
        for i in 0..10 {
            net.send(id, response(i)).unwrap();
        }
        for i in 0..10 {
            match rx.recv_timeout(Duration::from_millis(500)).unwrap() {
                Message::Response(r) => assert_eq!(r.first_serial, i),
                Message::Request(_) => panic!("wrong message"),
            }
        }
    }

    #[test]
    fn unknown_endpoint_errors() {
        let net = SimNetwork::new(Duration::ZERO);
        assert!(net.send(EndpointId(99), response(0)).is_err());
    }

    fn recv_serial(rx: &Receiver<Message>) -> u64 {
        match rx.recv_timeout(Duration::from_millis(2000)).unwrap() {
            Message::Response(r) => r.first_serial,
            Message::Request(_) => panic!("wrong message"),
        }
    }

    #[test]
    fn slow_link_adds_delay() {
        let net = SimNetwork::new(Duration::ZERO);
        let (id, rx) = net.register();
        net.set_link_fault(
            id,
            LinkFault {
                extra_delay: Duration::from_millis(30),
                ..LinkFault::default()
            },
        );
        let start = Instant::now();
        net.send(id, response(1)).unwrap();
        let _ = rx.recv_timeout(Duration::from_millis(2000)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn partition_parks_until_heal_in_order() {
        let net = SimNetwork::new(Duration::ZERO);
        let (id, rx) = net.register();
        net.set_link_fault(
            id,
            LinkFault {
                partitioned: true,
                ..LinkFault::default()
            },
        );
        for i in 0..5 {
            net.send(id, response(i)).unwrap();
        }
        assert!(
            rx.recv_timeout(Duration::from_millis(50)).is_err(),
            "partition holds traffic"
        );
        net.clear_link_fault(id);
        for i in 0..5 {
            assert_eq!(recv_serial(&rx), i, "released in send order");
        }
    }

    #[test]
    fn lossy_link_drops_deterministically() {
        let counts: Vec<u64> = (0..2)
            .map(|_| {
                let net = SimNetwork::new(Duration::ZERO);
                net.set_fault_seed(7);
                let (id, rx) = net.register();
                net.set_link_fault(
                    id,
                    LinkFault {
                        drop_rate: 0.5,
                        ..LinkFault::default()
                    },
                );
                for i in 0..64 {
                    net.send(id, response(i)).unwrap();
                }
                // Drain whatever survived; exact set must match per seed.
                let mut survived = 0u64;
                while rx.recv_timeout(Duration::from_millis(100)).is_ok() {
                    survived += 1;
                }
                assert_eq!(net.dropped_count() + survived, 64);
                assert!(net.dropped_count() > 0, "some messages dropped");
                net.dropped_count()
            })
            .collect();
        assert_eq!(counts[0], counts[1], "same seed, same drops");
    }

    #[test]
    fn fifo_preserved_across_fault_clear() {
        // A message stuck behind a big injected delay must still arrive
        // before a message sent after the fault cleared.
        let net = SimNetwork::new(Duration::ZERO);
        let (id, rx) = net.register();
        net.set_link_fault(
            id,
            LinkFault {
                extra_delay: Duration::from_millis(40),
                ..LinkFault::default()
            },
        );
        net.send(id, response(0)).unwrap();
        net.clear_link_fault(id);
        net.send(id, response(1)).unwrap();
        assert_eq!(recv_serial(&rx), 0);
        assert_eq!(recv_serial(&rx), 1);
    }

    #[test]
    fn shutdown_with_parked_messages_does_not_hang() {
        let net = SimNetwork::new(Duration::from_millis(5));
        let (id, _rx) = net.register();
        net.set_link_fault(
            id,
            LinkFault {
                partitioned: true,
                ..LinkFault::default()
            },
        );
        net.send(id, response(0)).unwrap();
        net.shutdown();
        assert!(net.send(id, response(1)).is_err(), "closed after shutdown");
    }
}
