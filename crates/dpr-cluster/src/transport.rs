//! The in-process message bus with configurable one-way latency.
//!
//! Stand-in for the paper's TCP + accelerated networking (see DESIGN.md):
//! endpoints register an inbox; `send` either delivers immediately
//! (zero-latency configuration) or schedules delivery through a delay-heap
//! pump thread. Per-message delivery cost is what makes client batching
//! (`b`) and windowing (`w`) matter, reproducing the trade-offs of Fig. 13.

use crate::message::Message;
use crossbeam::channel::{unbounded, Receiver, Sender};
use dpr_core::{DprError, Result};
use parking_lot::{Condvar, Mutex, RwLock};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Address of a worker or client on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointId(pub u64);

struct Delayed {
    deliver_at: Instant,
    seq: u64,
    to: EndpointId,
    msg: Message,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

struct PumpState {
    heap: BinaryHeap<Reverse<Delayed>>,
}

/// The bus.
pub struct SimNetwork {
    latency: Duration,
    endpoints: RwLock<HashMap<EndpointId, Sender<Message>>>,
    pump: Mutex<PumpState>,
    pump_wake: Condvar,
    seq: AtomicU64,
    shutdown: AtomicBool,
    next_endpoint: AtomicU64,
}

impl SimNetwork {
    /// Create a bus with the given one-way message latency. A latency of
    /// zero delivers synchronously with no pump thread involvement.
    pub fn new(latency: Duration) -> Arc<SimNetwork> {
        let net = Arc::new(SimNetwork {
            latency,
            endpoints: RwLock::new(HashMap::new()),
            pump: Mutex::new(PumpState {
                heap: BinaryHeap::new(),
            }),
            pump_wake: Condvar::new(),
            seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            next_endpoint: AtomicU64::new(0),
        });
        if !latency.is_zero() {
            let weak = Arc::downgrade(&net);
            std::thread::Builder::new()
                .name("sim-net-pump".into())
                .spawn(move || loop {
                    let Some(net) = weak.upgrade() else { return };
                    if net.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    net.pump_once();
                })
                .expect("spawn network pump");
        }
        net
    }

    /// Allocate a fresh endpoint and its inbox.
    pub fn register(&self) -> (EndpointId, Receiver<Message>) {
        let id = EndpointId(self.next_endpoint.fetch_add(1, Ordering::AcqRel));
        let (tx, rx) = unbounded();
        self.endpoints.write().insert(id, tx);
        (id, rx)
    }

    /// Send `msg` to `to`, subject to the configured latency.
    pub fn send(&self, to: EndpointId, msg: Message) -> Result<()> {
        if self.shutdown.load(Ordering::Acquire) {
            return Err(DprError::Closed);
        }
        if self.latency.is_zero() {
            return self.deliver(to, msg);
        }
        let mut pump = self.pump.lock();
        pump.heap.push(Reverse(Delayed {
            deliver_at: Instant::now() + self.latency,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            to,
            msg,
        }));
        crate::metrics::net_inflight().set(pump.heap.len() as i64);
        self.pump_wake.notify_one();
        Ok(())
    }

    fn deliver(&self, to: EndpointId, msg: Message) -> Result<()> {
        let endpoints = self.endpoints.read();
        match endpoints.get(&to) {
            Some(tx) => tx.send(msg).map_err(|_| DprError::Closed),
            None => Err(DprError::Invalid(format!("unknown endpoint {to:?}"))),
        }
    }

    fn pump_once(&self) {
        let mut due = Vec::new();
        {
            let mut pump = self.pump.lock();
            let now = Instant::now();
            loop {
                match pump.heap.peek() {
                    Some(Reverse(d)) if d.deliver_at <= now => {
                        let Reverse(d) = pump.heap.pop().unwrap();
                        due.push((d.to, d.msg));
                    }
                    Some(Reverse(d)) => {
                        let wait = d.deliver_at - now;
                        if due.is_empty() {
                            self.pump_wake
                                .wait_for(&mut pump, wait.min(Duration::from_micros(200)));
                        }
                        break;
                    }
                    None => {
                        if due.is_empty() {
                            self.pump_wake.wait_for(&mut pump, Duration::from_millis(5));
                        }
                        break;
                    }
                }
            }
        }
        if !due.is_empty() {
            crate::metrics::net_inflight().set(self.pump.lock().heap.len() as i64);
        }
        for (to, msg) in due {
            let _ = self.deliver(to, msg);
        }
    }

    /// Tear down; subsequent sends fail.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.pump_wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Message, ResponseMsg};

    fn response(first_serial: u64) -> Message {
        Message::Response(ResponseMsg {
            session: None,
            first_serial,
            op_count: 1,
            outcome: Err(DprError::Timeout),
        })
    }

    #[test]
    fn zero_latency_delivers_synchronously() {
        let net = SimNetwork::new(Duration::ZERO);
        let (id, rx) = net.register();
        net.send(id, response(7)).unwrap();
        match rx.try_recv().unwrap() {
            Message::Response(r) => assert_eq!(r.first_serial, 7),
            Message::Request(_) => panic!("wrong message"),
        }
    }

    #[test]
    fn latency_delays_delivery() {
        let net = SimNetwork::new(Duration::from_millis(20));
        let (id, rx) = net.register();
        let start = Instant::now();
        net.send(id, response(1)).unwrap();
        assert!(rx.try_recv().is_err(), "not delivered immediately");
        let _ = rx.recv_timeout(Duration::from_millis(500)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(18));
    }

    #[test]
    fn messages_ordered_per_latency_class() {
        let net = SimNetwork::new(Duration::from_millis(5));
        let (id, rx) = net.register();
        for i in 0..10 {
            net.send(id, response(i)).unwrap();
        }
        for i in 0..10 {
            match rx.recv_timeout(Duration::from_millis(500)).unwrap() {
                Message::Response(r) => assert_eq!(r.first_serial, i),
                Message::Request(_) => panic!("wrong message"),
            }
        }
    }

    #[test]
    fn unknown_endpoint_errors() {
        let net = SimNetwork::new(Duration::ZERO);
        assert!(net.send(EndpointId(99), response(0)).is_err());
    }
}
