//! A real TCP serving layer for workers.
//!
//! DESIGN.md claims the in-process bus could be swapped for TCP without
//! touching protocol code — this module proves it: a worker accepts framed
//! `(BatchHeader, ops)` requests on a socket and serves them through the
//! exact same [`Worker::execute_local`] path the bus uses, and a thin
//! client drives a [`libdpr::DprClientSession`] over the wire.
//!
//! Framing: 4-byte little-endian length prefix + JSON body. JSON keeps the
//! wire format debuggable; swapping in a binary codec would be a local
//! change here.

use crate::message::{ClusterOp, OpResult};
use crate::worker::Worker;
use dpr_core::{DprError, Result, ShardId};
use libdpr::{BatchHeader, BatchReply, DprClientSession};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One request over the wire.
#[derive(Debug, Serialize, Deserialize)]
pub struct WireRequest {
    /// DPR header.
    pub header: BatchHeader,
    /// Operation bodies.
    pub ops: Vec<ClusterOp>,
}

/// One response over the wire.
#[derive(Debug, Serialize, Deserialize)]
pub struct WireResponse {
    /// The reply and results, or the protocol rejection.
    pub outcome: std::result::Result<(BatchReply, Vec<OpResult>), DprError>,
}

fn write_frame<T: Serialize>(stream: &mut TcpStream, value: &T) -> Result<()> {
    let body = serde_json::to_vec(value).map_err(|e| DprError::Invalid(format!("encode: {e}")))?;
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(&body)?;
    Ok(())
}

fn read_frame<T: for<'de> Deserialize<'de>>(stream: &mut TcpStream) -> Result<Option<T>> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e)
            if e.kind() == std::io::ErrorKind::UnexpectedEof
                || e.kind() == std::io::ErrorKind::ConnectionReset =>
        {
            return Ok(None)
        }
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > 64 << 20 {
        return Err(DprError::Invalid(format!("oversized frame: {len}")));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    let value =
        serde_json::from_slice(&body).map_err(|e| DprError::Invalid(format!("decode: {e}")))?;
    Ok(Some(value))
}

/// Serve `worker` on `listener` until `stop` is set. One thread per
/// connection; each connection is a sequential request/response stream
/// (clients pipeline by opening several connections).
pub fn serve_worker(
    worker: Arc<Worker>,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    std::thread::Builder::new()
        .name(format!("tcp-worker-{}", worker.shard().0))
        .spawn(move || {
            loop {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        let worker = worker.clone();
                        let stop = stop.clone();
                        // Detached: a handler exits when its client
                        // disconnects (EOF) or after the next request once
                        // `stop` is set — never joined, so shutdown cannot
                        // deadlock on a client that is still connected.
                        std::thread::spawn(move || {
                            let mut stream = stream;
                            while !stop.load(Ordering::Acquire) {
                                let req: WireRequest = match read_frame(&mut stream) {
                                    Ok(Some(r)) => r,
                                    Ok(None) | Err(_) => break,
                                };
                                let outcome = worker.execute_local(&req.header, &req.ops);
                                if write_frame(&mut stream, &WireResponse { outcome }).is_err() {
                                    break;
                                }
                            }
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        })
        .expect("spawn tcp server")
}

/// A blocking TCP client multiplexing one [`DprClientSession`] over
/// per-shard connections.
pub struct TcpClient {
    session: DprClientSession,
    conns: HashMap<ShardId, TcpStream>,
}

impl TcpClient {
    /// Connect to each shard's server.
    pub fn connect(
        session: DprClientSession,
        addrs: &HashMap<ShardId, SocketAddr>,
    ) -> Result<TcpClient> {
        let mut conns = HashMap::new();
        for (&shard, addr) in addrs {
            conns.insert(shard, TcpStream::connect(addr)?);
        }
        Ok(TcpClient { session, conns })
    }

    /// The underlying DPR session (commit tracking, failure handling).
    pub fn session_mut(&mut self) -> &mut DprClientSession {
        &mut self.session
    }

    /// Execute a batch on `shard` synchronously over the wire.
    pub fn execute(&mut self, shard: ShardId, ops: Vec<ClusterOp>) -> Result<Vec<OpResult>> {
        let header = self.session.begin_batch(shard, ops.len() as u32)?;
        let stream = self
            .conns
            .get_mut(&shard)
            .ok_or_else(|| DprError::Invalid(format!("no connection to {shard}")))?;
        write_frame(stream, &WireRequest { header, ops })?;
        let resp: WireResponse = read_frame(stream)?
            .ok_or_else(|| DprError::Invalid("server closed connection".into()))?;
        let (reply, results) = resp.outcome?;
        self.session.process_reply(&reply)?;
        Ok(results)
    }
}
