//! TCP clients for the real network plane, plus the single-worker serving
//! shim kept for compatibility.
//!
//! The server side lives in [`crate::net`] (non-blocking fan-in
//! [`NetServer`]); the byte-level contract lives in [`crate::wire`] and is
//! specified in `docs/NETWORK.md`. This module provides the two client
//! shapes:
//!
//! * [`TcpClient`] — synchronous request/response, one batch at a time,
//!   with a configurable read deadline. The simplest correct client; used
//!   by the integration tests and as the worked example in the docs.
//! * [`PipelinedClient`] — one connection, many batches in flight
//!   (windowing is the caller's policy), duplicate-safe retransmission and
//!   reconnect-with-epoch-bump. This is the client the `netload` generator
//!   drives, and its request/response path is allocation-free in steady
//!   state: frames encode into recycled buffers that double as the
//!   retransmission record, receive buffers are pooled, and response
//!   bodies land in pooled shared buffers whose values are zero-copy
//!   views ([`bytes::Bytes`]).

use crate::message::{ClusterOp, OpResult};
use crate::net::{NetServer, NetServerConfig};
use crate::wire::{
    self, CutResponse, Frame, FrameKind, Hello, HelloAck, ProtoError, ProtoErrorCode,
};
use crate::worker::Worker;
use bytes::Bytes;
use dpr_core::{BufferPool, DprError, Result, ScratchLease, ShardId, WorldLine};
use libdpr::{BatchHeader, DprClientSession};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use crate::wire::{WireRequest, WireResponse};

/// Default read deadline for synchronous calls: long enough for a worker
/// mid-checkpoint, short enough that a hung worker surfaces as a typed
/// [`DprError::Timeout`] instead of blocking the client forever.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Encoded-request buffers a [`PipelinedClient`] keeps for reuse once their
/// batch completes.
const SPARE_BUFFERS: usize = 256;

/// Serve one `worker` on `listener` until `stop` is set.
///
/// Compatibility shim over [`NetServer`]: the returned handle joins the
/// server's acceptor and I/O threads before finishing, so — unlike the old
/// blocking stub — setting `stop` and joining the handle leaks nothing,
/// and closing the listener (from the OS side) also winds the server down.
pub fn serve_worker(
    worker: Arc<Worker>,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    let name = format!("tcp-worker-{}", worker.shard().0);
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            let cfg = NetServerConfig {
                io_threads: 1,
                ..NetServerConfig::default()
            };
            match NetServer::start_with_stop(vec![worker], listener, cfg, stop.clone()) {
                Ok(server) => {
                    while !stop.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    server.shutdown();
                }
                Err(_) => stop.store(true, Ordering::Release),
            }
        })
        .expect("spawn tcp server")
}

/// One framed connection with pooled receive and encode buffers.
struct FramedConn {
    addr: SocketAddr,
    stream: TcpStream,
    /// Received-but-unparsed bytes (pooled).
    rd: ScratchLease,
    /// Outbound encode staging (pooled), cleared per send.
    enc: ScratchLease,
    next_seq: u64,
}

impl FramedConn {
    fn dial(addr: SocketAddr) -> Result<FramedConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let pool = BufferPool::global();
        Ok(FramedConn {
            addr,
            stream,
            rd: pool.acquire_scratch(16 << 10),
            enc: pool.acquire_scratch(4 << 10),
            next_seq: 1,
        })
    }

    /// Encode one frame via `f` into the recycled staging buffer and write
    /// it out — no per-send allocation.
    fn send_with<F: FnOnce(&mut Vec<u8>)>(&mut self, f: F) -> Result<()> {
        self.enc.clear();
        f(&mut self.enc);
        self.stream.write_all(&self.enc)?;
        Ok(())
    }

    /// Write an already-encoded frame (a [`PipelinedClient`] in-flight
    /// record) verbatim.
    fn send_bytes(&mut self, frame: &[u8]) -> Result<()> {
        self.stream.write_all(frame)?;
        Ok(())
    }

    /// Pop the next complete frame from the buffer, if any (owned-`Frame`
    /// tier, used by the synchronous client).
    fn pop_frame(&mut self) -> Result<Option<Frame>> {
        match wire::decode_frame(&self.rd)? {
            Some((frame, used)) => {
                self.rd.drain(..used);
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }

    /// Pop the next complete frame, lifting its body into a pooled shared
    /// buffer: result values decoded from it are zero-copy views, and the
    /// buffer recycles when they drop. The allocation-free twin of
    /// [`FramedConn::pop_frame`].
    fn pop_frame_pooled(&mut self) -> Result<Option<(wire::FrameHeader, Bytes)>> {
        let header = match wire::decode_header(&self.rd)? {
            Some(h) => h,
            None => return Ok(None),
        };
        let total = header.frame_len();
        if self.rd.len() < total {
            return Ok(None);
        }
        let body = &self.rd[wire::FRAME_HEADER_LEN..total];
        let mut lease = BufferPool::global().acquire_shared(body.len());
        lease.data_mut()[..body.len()].copy_from_slice(body);
        let body = lease.freeze(body.len());
        self.rd.drain(..total);
        Ok(Some((header, body)))
    }

    /// Blocking frame read with a deadline. [`DprError::Timeout`] once the
    /// deadline passes without a complete frame.
    fn recv_deadline(&mut self, deadline: Instant) -> Result<Frame> {
        loop {
            if let Some(frame) = self.pop_frame()? {
                return Ok(frame);
            }
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .ok_or(DprError::Timeout)?;
            self.stream
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
            let mut chunk = [0u8; 16 << 10];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(DprError::Closed),
                Ok(n) => self.rd.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Read whatever is available without exceeding `wait`.
    fn recv_available(&mut self, wait: Duration) -> Result<()> {
        self.stream
            .set_read_timeout(Some(wait.max(Duration::from_millis(1))))?;
        let mut chunk = [0u8; 64 << 10];
        match self.stream.read(&mut chunk) {
            Ok(0) => return Err(DprError::Closed),
            Ok(n) => {
                self.rd.extend_from_slice(&chunk[..n]);
                // Drain the rest of the ready bytes without waiting again.
                self.stream.set_read_timeout(None)?;
                self.stream.set_nonblocking(true)?;
                loop {
                    match self.stream.read(&mut chunk) {
                        Ok(0) => break,
                        Ok(n) => self.rd.extend_from_slice(&chunk[..n]),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) => {
                            self.stream.set_nonblocking(false)?;
                            return Err(e.into());
                        }
                    }
                }
                self.stream.set_nonblocking(false)?;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
        Ok(())
    }

    /// Run the handshake on a fresh connection.
    fn handshake(
        &mut self,
        session: &DprClientSession,
        epoch: u32,
        deadline: Instant,
    ) -> Result<HelloAck> {
        let hello = Hello {
            session: session.id(),
            epoch,
            world_line: session.world_line(),
        };
        self.send_with(|out| hello.encode(out))?;
        let frame = self.recv_deadline(deadline)?;
        match frame.kind {
            FrameKind::HelloAck => {
                let ack = HelloAck::from_frame(&frame)?;
                if ack.epoch != epoch {
                    return Err(DprError::Invalid(format!(
                        "handshake echoed epoch {} != {epoch}",
                        ack.epoch
                    )));
                }
                Ok(ack)
            }
            FrameKind::Error => Err(ProtoError::from_frame(&frame)?.to_dpr_error()),
            k => Err(DprError::Invalid(format!("expected HelloAck, got {k:?}"))),
        }
    }
}

/// A synchronous TCP client multiplexing one [`DprClientSession`] over the
/// network plane: one connection per distinct server address, one batch in
/// flight at a time.
pub struct TcpClient {
    session: DprClientSession,
    epoch: u32,
    read_timeout: Duration,
    /// Distinct server connections.
    conns: Vec<FramedConn>,
    /// Shard → index into `conns`.
    routes: HashMap<ShardId, usize>,
}

impl TcpClient {
    /// Connect to each shard's server and run the session handshake.
    /// Shards sharing an address share one connection (the fan-in server
    /// hosts many shards behind one listener).
    pub fn connect(
        session: DprClientSession,
        addrs: &HashMap<ShardId, SocketAddr>,
    ) -> Result<TcpClient> {
        let mut client = TcpClient {
            session,
            epoch: 1,
            read_timeout: DEFAULT_READ_TIMEOUT,
            conns: Vec::new(),
            routes: HashMap::new(),
        };
        let deadline = Instant::now() + client.read_timeout;
        let mut by_addr: HashMap<SocketAddr, usize> = HashMap::new();
        for (&shard, &addr) in addrs {
            let idx = match by_addr.get(&addr) {
                Some(&idx) => idx,
                None => {
                    let mut conn = FramedConn::dial(addr)?;
                    conn.handshake(&client.session, client.epoch, deadline)?;
                    client.conns.push(conn);
                    let idx = client.conns.len() - 1;
                    by_addr.insert(addr, idx);
                    idx
                }
            };
            client.routes.insert(shard, idx);
        }
        Ok(client)
    }

    /// Replace the read deadline applied to every synchronous call
    /// (default [`DEFAULT_READ_TIMEOUT`]). A hung worker then surfaces as
    /// [`DprError::Timeout`] instead of blocking forever.
    pub fn set_read_timeout(&mut self, timeout: Duration) {
        self.read_timeout = timeout;
    }

    /// The underlying DPR session (commit tracking, failure handling).
    pub fn session_mut(&mut self) -> &mut DprClientSession {
        &mut self.session
    }

    /// Tear down every connection and dial again with a bumped epoch —
    /// the reconnect path after a network failure or server restart.
    /// In-flight state is per-call in this client, so nothing is replayed.
    pub fn reconnect(&mut self) -> Result<()> {
        self.epoch += 1;
        let deadline = Instant::now() + self.read_timeout;
        for conn in &mut self.conns {
            let mut fresh = FramedConn::dial(conn.addr)?;
            fresh.handshake(&self.session, self.epoch, deadline)?;
            fresh.next_seq = conn.next_seq;
            *conn = fresh;
        }
        Ok(())
    }

    fn conn_for(&mut self, shard: ShardId) -> Result<&mut FramedConn> {
        let idx = *self
            .routes
            .get(&shard)
            .ok_or_else(|| DprError::Invalid(format!("no connection to {shard}")))?;
        Ok(&mut self.conns[idx])
    }

    /// Execute a batch on `shard` synchronously over the wire.
    ///
    /// Returns [`DprError::Timeout`] if no response arrives within the
    /// configured read deadline; the connection is then left with the
    /// orphaned response still pending, so callers should
    /// [`TcpClient::reconnect`] before reusing the session.
    pub fn execute(&mut self, shard: ShardId, ops: Vec<ClusterOp>) -> Result<Vec<OpResult>> {
        let header = self.session.begin_batch(shard, ops.len() as u32)?;
        let deadline = Instant::now() + self.read_timeout;
        let conn = self.conn_for(shard)?;
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.send_with(|out| wire::encode_request(out, shard, seq, &header, &ops))?;
        loop {
            let frame = conn.recv_deadline(deadline)?;
            match frame.kind {
                FrameKind::Response if frame.seq == seq => {
                    let resp = WireResponse::from_frame(&frame)?;
                    let (reply, results) = resp.outcome?;
                    self.session.process_reply(&reply)?;
                    return Ok(results);
                }
                // A stale response (e.g. from before a timeout) — skip.
                FrameKind::Response => {}
                FrameKind::Error => {
                    return Err(ProtoError::from_frame(&frame)?.to_dpr_error());
                }
                FrameKind::Goodbye => return Err(DprError::Closed),
                k => {
                    return Err(DprError::Invalid(format!(
                        "unexpected frame {k:?} awaiting response"
                    )))
                }
            }
        }
    }

    /// Fetch the DPR cut over the wire and advance this session's
    /// committed prefix, returning the new prefix length.
    ///
    /// Mirrors `SessionHandle::refresh_commit_safe`: the cut is applied
    /// only while the server is still on this session's world-line.
    pub fn refresh_commit_over_wire(&mut self) -> Result<u64> {
        let deadline = Instant::now() + self.read_timeout;
        let conn = self
            .conns
            .first_mut()
            .ok_or_else(|| DprError::Invalid("client has no connections".into()))?;
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.send_with(|out| wire::encode_control(out, FrameKind::CutReq, seq))?;
        loop {
            let frame = conn.recv_deadline(deadline)?;
            match frame.kind {
                FrameKind::CutResp if frame.seq == seq => {
                    let resp = CutResponse::from_frame(&frame)?;
                    let mine = self.session.world_line();
                    if resp.world_line != mine {
                        return Err(DprError::WorldLineMismatch {
                            requested: mine,
                            current: resp.world_line,
                        });
                    }
                    return Ok(self.session.refresh_commit(&resp.cut));
                }
                FrameKind::Response | FrameKind::CutResp => {}
                FrameKind::Error => {
                    return Err(ProtoError::from_frame(&frame)?.to_dpr_error());
                }
                FrameKind::Goodbye => return Err(DprError::Closed),
                k => {
                    return Err(DprError::Invalid(format!(
                        "unexpected frame {k:?} awaiting cut"
                    )))
                }
            }
        }
    }
}

/// One batch awaiting its response on a [`PipelinedClient`].
///
/// Holds the *encoded frame bytes* — which double as the retransmission
/// record, so retries rewrite the identical frame without re-encoding —
/// plus the scalar header facts the completion path needs. The buffer is
/// recycled into the client's spare list when the batch completes.
struct InflightBatch {
    /// The encoded `Request` frame, exactly as first sent.
    bytes: Vec<u8>,
    /// Serial of the first op (for the caller's completion accounting).
    first_serial: u64,
    /// World-line the batch was issued on (for mismatch reporting).
    world_line: WorldLine,
    issued_at: Instant,
    sent_at: Instant,
}

/// A completed batch surfaced by [`PipelinedClient::poll`].
pub struct Completed {
    /// The wire sequence number (as returned by [`PipelinedClient::issue`]).
    pub seq: u64,
    /// Serial of the first op in the batch.
    pub first_serial: u64,
    /// When the batch was first issued (for latency accounting).
    pub issued_at: Instant,
    /// Per-op results, or the batch's rejection.
    pub result: Result<Vec<OpResult>>,
}

/// A completed batch surfaced by [`PipelinedClient::poll_each`] — results
/// borrow the client's reused decode scratch, so the steady-state
/// completion path allocates nothing.
pub struct CompletedRef<'a> {
    /// The wire sequence number (as returned by [`PipelinedClient::issue`]).
    pub seq: u64,
    /// Serial of the first op in the batch.
    pub first_serial: u64,
    /// When the batch was first issued (for latency accounting).
    pub issued_at: Instant,
    /// Per-op results, or the batch's rejection.
    pub result: std::result::Result<&'a [OpResult], DprError>,
}

/// A pipelined client session over one connection to a fan-in server: many
/// batches in flight, explicit polling, duplicate-safe retransmission, and
/// reconnect with an epoch bump. The windowing policy (how many batches to
/// keep in flight) belongs to the caller — typically the `netload`
/// closed-loop generator.
pub struct PipelinedClient {
    session: DprClientSession,
    epoch: u32,
    conn: FramedConn,
    /// Shards reachable through this connection (from the handshake).
    shards: Vec<ShardId>,
    inflight: HashMap<u64, InflightBatch>,
    /// Recycled encode buffers from completed batches.
    spare: Vec<Vec<u8>>,
    /// Reused header for issuing (deps vector rebuilt in place).
    header_scratch: BatchHeader,
    /// Reused results buffer for decoding responses.
    results_scratch: Vec<OpResult>,
    /// World-line mismatch observed but not yet surfaced via poll.
    world_line_failure: Option<WorldLine>,
}

impl PipelinedClient {
    /// Dial `addr` and run the session handshake.
    pub fn connect(session: DprClientSession, addr: SocketAddr) -> Result<PipelinedClient> {
        let mut conn = FramedConn::dial(addr)?;
        let ack = conn.handshake(&session, 1, Instant::now() + DEFAULT_READ_TIMEOUT)?;
        let world_line = session.world_line();
        let id = session.id();
        Ok(PipelinedClient {
            session,
            epoch: 1,
            conn,
            shards: ack.shards,
            inflight: HashMap::new(),
            spare: Vec::new(),
            header_scratch: BatchHeader {
                session: id,
                world_line,
                version_lower_bound: dpr_core::Version::ZERO,
                deps: Vec::new(),
                first_serial: 0,
                op_count: 0,
            },
            results_scratch: Vec::new(),
            world_line_failure: None,
        })
    }

    /// Shards the server advertised in its handshake.
    #[must_use]
    pub fn shards(&self) -> &[ShardId] {
        &self.shards
    }

    /// The underlying DPR session.
    pub fn session_mut(&mut self) -> &mut DprClientSession {
        &mut self.session
    }

    /// Batches issued but not yet completed.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Issue one batch without waiting; returns its wire sequence number.
    ///
    /// The ops are encoded straight into a recycled buffer (kept as the
    /// retransmission record until the batch completes), so callers can
    /// reuse their own op buffers across calls — steady state allocates
    /// nothing.
    pub fn issue(&mut self, shard: ShardId, ops: &[ClusterOp]) -> Result<u64> {
        self.session
            .begin_batch_into(shard, ops.len() as u32, &mut self.header_scratch)?;
        let header = &self.header_scratch;
        let seq = self.conn.next_seq;
        self.conn.next_seq += 1;
        let mut bytes = self.spare.pop().unwrap_or_default();
        wire::encode_request(&mut bytes, shard, seq, header, ops);
        let record = InflightBatch {
            bytes,
            first_serial: header.first_serial,
            world_line: header.world_line,
            issued_at: Instant::now(),
            sent_at: Instant::now(),
        };
        self.conn.send_bytes(&record.bytes)?;
        self.inflight.insert(seq, record);
        Ok(seq)
    }

    /// Fire-and-forget cut query; the answer is applied to the session's
    /// committed prefix inside [`PipelinedClient::poll`] when it arrives.
    pub fn request_cut(&mut self) -> Result<()> {
        let seq = self.conn.next_seq;
        self.conn.next_seq += 1;
        self.conn
            .send_with(|out| wire::encode_control(out, FrameKind::CutReq, seq))
    }

    /// Return a completed batch's encode buffer to the spare list.
    fn recycle(&mut self, mut bytes: Vec<u8>) {
        if self.spare.len() < SPARE_BUFFERS {
            bytes.clear();
            self.spare.push(bytes);
        }
    }

    /// Drain ready responses, waiting up to `wait` for bytes to arrive.
    ///
    /// Returns completed batches (order of completion). A world-line
    /// mismatch — the cluster failed and recovered underneath us — is
    /// surfaced as [`DprError::WorldLineMismatch`] *after* the completions
    /// that preceded it have been returned by earlier calls.
    pub fn poll(&mut self, wait: Duration) -> Result<Vec<Completed>> {
        let mut out = Vec::new();
        self.poll_each(wait, |c| {
            out.push(Completed {
                seq: c.seq,
                first_serial: c.first_serial,
                issued_at: c.issued_at,
                result: c.result.map(<[OpResult]>::to_vec),
            });
        })?;
        Ok(out)
    }

    /// [`PipelinedClient::poll`] without the per-batch allocations: each
    /// completion is handed to `f` as a [`CompletedRef`] whose results
    /// borrow a reused decode buffer. Returns the number of completions
    /// delivered. Semantics (cut handling, retryable protocol errors,
    /// world-line failure surfacing) are identical to `poll`.
    pub fn poll_each(
        &mut self,
        wait: Duration,
        mut f: impl FnMut(CompletedRef<'_>),
    ) -> Result<usize> {
        self.conn.recv_available(wait)?;
        let mut delivered = 0usize;
        while let Some((header, body)) = self.conn.pop_frame_pooled()? {
            match header.kind {
                FrameKind::Response => {
                    let Some(batch) = self.inflight.remove(&header.seq) else {
                        continue; // response to a superseded transmission
                    };
                    // Scratch is moved out so the borrow handed to `f`
                    // cannot alias the client while it runs.
                    let mut results = std::mem::take(&mut self.results_scratch);
                    results.clear();
                    let outcome = match wire::decode_response_body(&body, &mut results) {
                        Ok(o) => o,
                        Err(e) => {
                            self.results_scratch = results;
                            return Err(e);
                        }
                    };
                    let result: std::result::Result<&[OpResult], DprError> = match outcome {
                        Ok(reply) => match self.session.process_reply(&reply) {
                            Ok(()) => Ok(results.as_slice()),
                            Err(DprError::WorldLineMismatch { current, .. }) => {
                                self.world_line_failure = Some(current);
                                Err(DprError::WorldLineMismatch {
                                    requested: batch.world_line,
                                    current,
                                })
                            }
                            Err(e) => Err(e),
                        },
                        Err(e) => {
                            if let DprError::WorldLineMismatch { current, .. } = e {
                                self.world_line_failure = Some(current);
                            }
                            Err(e)
                        }
                    };
                    f(CompletedRef {
                        seq: header.seq,
                        first_serial: batch.first_serial,
                        issued_at: batch.issued_at,
                        result,
                    });
                    delivered += 1;
                    self.results_scratch = results;
                    self.recycle(batch.bytes);
                }
                FrameKind::CutResp => {
                    let resp = CutResponse::from_body(&body)?;
                    if resp.world_line == self.session.world_line() {
                        self.session.refresh_commit(&resp.cut);
                    }
                }
                FrameKind::Error => {
                    let err = ProtoError::from_body(&body)?;
                    match err.code {
                        // Retryable: the batch stays in flight and will be
                        // retransmitted by `retransmit_stalled`.
                        ProtoErrorCode::DuplicateInFlight => {}
                        _ => return Err(err.to_dpr_error()),
                    }
                }
                FrameKind::Goodbye => return Err(DprError::Closed),
                k => {
                    return Err(DprError::Invalid(format!(
                        "unexpected frame {k:?} on pipelined connection"
                    )))
                }
            }
        }
        if delivered == 0 {
            if let Some(current) = self.world_line_failure {
                return Err(DprError::WorldLineMismatch {
                    requested: self.session.world_line(),
                    current,
                });
            }
        }
        Ok(delivered)
    }

    /// Retransmit every batch whose response has been outstanding for at
    /// least `older_than`. Safe for non-idempotent ops only when the
    /// server runs duplicate suppression (`dedupe_window > 0`); see
    /// `docs/NETWORK.md` §6. Returns the number retransmitted.
    ///
    /// Resends are the stored frame bytes verbatim — same seq, same
    /// serials — which is what makes them safe to dedupe server-side.
    pub fn retransmit_stalled(&mut self, older_than: Duration) -> Result<usize> {
        let now = Instant::now();
        let mut resent = 0usize;
        let stalled: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, b)| now.duration_since(b.sent_at) >= older_than)
            .map(|(&s, _)| s)
            .collect();
        for seq in stalled {
            let batch = self.inflight.get_mut(&seq).expect("collected above");
            batch.sent_at = now;
            self.conn.send_bytes(&batch.bytes)?;
            resent += 1;
        }
        Ok(resent)
    }

    /// Drop the connection, dial again with a bumped epoch, and retransmit
    /// every in-flight batch. The server's dedupe cache replays batches
    /// that executed before the disconnect, keeping them exactly-once.
    pub fn reconnect(&mut self) -> Result<()> {
        self.epoch += 1;
        let mut fresh = FramedConn::dial(self.conn.addr)?;
        let ack = fresh.handshake(
            &self.session,
            self.epoch,
            Instant::now() + DEFAULT_READ_TIMEOUT,
        )?;
        fresh.next_seq = self.conn.next_seq;
        self.conn = fresh;
        self.shards = ack.shards;
        let now = Instant::now();
        let seqs: Vec<u64> = self.inflight.keys().copied().collect();
        for seq in seqs {
            let batch = self.inflight.get_mut(&seq).expect("own key");
            batch.sent_at = now;
            self.conn.send_bytes(&batch.bytes)?;
        }
        Ok(())
    }
}
