//! TCP clients for the real network plane, plus the single-worker serving
//! shim kept for compatibility.
//!
//! The server side lives in [`crate::net`] (non-blocking fan-in
//! [`NetServer`]); the byte-level contract lives in [`crate::wire`] and is
//! specified in `docs/NETWORK.md`. This module provides the two client
//! shapes:
//!
//! * [`TcpClient`] — synchronous request/response, one batch at a time,
//!   with a configurable read deadline. The simplest correct client; used
//!   by the integration tests and as the worked example in the docs.
//! * [`PipelinedClient`] — one connection, many batches in flight
//!   (windowing is the caller's policy), duplicate-safe retransmission and
//!   reconnect-with-epoch-bump. This is the client the `netload` generator
//!   drives.

use crate::message::{ClusterOp, OpResult};
use crate::net::{NetServer, NetServerConfig};
use crate::wire::{
    self, CutResponse, Frame, FrameKind, Hello, HelloAck, ProtoError, ProtoErrorCode,
};
use crate::worker::Worker;
use dpr_core::{DprError, Result, ShardId, WorldLine};
use libdpr::{BatchHeader, DprClientSession};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use crate::wire::{WireRequest, WireResponse};

/// Default read deadline for synchronous calls: long enough for a worker
/// mid-checkpoint, short enough that a hung worker surfaces as a typed
/// [`DprError::Timeout`] instead of blocking the client forever.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Serve one `worker` on `listener` until `stop` is set.
///
/// Compatibility shim over [`NetServer`]: the returned handle joins the
/// server's acceptor and I/O threads before finishing, so — unlike the old
/// blocking stub — setting `stop` and joining the handle leaks nothing,
/// and closing the listener (from the OS side) also winds the server down.
pub fn serve_worker(
    worker: Arc<Worker>,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    let name = format!("tcp-worker-{}", worker.shard().0);
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            let cfg = NetServerConfig {
                io_threads: 1,
                ..NetServerConfig::default()
            };
            match NetServer::start_with_stop(vec![worker], listener, cfg, stop.clone()) {
                Ok(server) => {
                    while !stop.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    server.shutdown();
                }
                Err(_) => stop.store(true, Ordering::Release),
            }
        })
        .expect("spawn tcp server")
}

/// One framed connection with a receive buffer.
struct FramedConn {
    addr: SocketAddr,
    stream: TcpStream,
    rd: Vec<u8>,
    next_seq: u64,
}

impl FramedConn {
    fn dial(addr: SocketAddr) -> Result<FramedConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(FramedConn {
            addr,
            stream,
            rd: Vec::new(),
            next_seq: 1,
        })
    }

    fn send(&mut self, frame: &Frame) -> Result<()> {
        let mut buf = Vec::with_capacity(frame.encoded_len());
        frame.encode_into(&mut buf);
        self.stream.write_all(&buf)?;
        Ok(())
    }

    /// Pop the next complete frame from the buffer, if any.
    fn pop_frame(&mut self) -> Result<Option<Frame>> {
        match wire::decode_frame(&self.rd)? {
            Some((frame, used)) => {
                self.rd.drain(..used);
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }

    /// Blocking frame read with a deadline. [`DprError::Timeout`] once the
    /// deadline passes without a complete frame.
    fn recv_deadline(&mut self, deadline: Instant) -> Result<Frame> {
        loop {
            if let Some(frame) = self.pop_frame()? {
                return Ok(frame);
            }
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .ok_or(DprError::Timeout)?;
            self.stream
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
            let mut chunk = [0u8; 16 << 10];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(DprError::Closed),
                Ok(n) => self.rd.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Read whatever is available without exceeding `wait`.
    fn recv_available(&mut self, wait: Duration) -> Result<()> {
        self.stream
            .set_read_timeout(Some(wait.max(Duration::from_millis(1))))?;
        let mut chunk = [0u8; 64 << 10];
        match self.stream.read(&mut chunk) {
            Ok(0) => return Err(DprError::Closed),
            Ok(n) => {
                self.rd.extend_from_slice(&chunk[..n]);
                // Drain the rest of the ready bytes without waiting again.
                self.stream.set_read_timeout(None)?;
                self.stream.set_nonblocking(true)?;
                loop {
                    match self.stream.read(&mut chunk) {
                        Ok(0) => break,
                        Ok(n) => self.rd.extend_from_slice(&chunk[..n]),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) => {
                            self.stream.set_nonblocking(false)?;
                            return Err(e.into());
                        }
                    }
                }
                self.stream.set_nonblocking(false)?;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
        Ok(())
    }

    /// Run the handshake on a fresh connection.
    fn handshake(
        &mut self,
        session: &DprClientSession,
        epoch: u32,
        deadline: Instant,
    ) -> Result<HelloAck> {
        let hello = Hello {
            session: session.id(),
            epoch,
            world_line: session.world_line(),
        };
        self.send(&hello.to_frame())?;
        let frame = self.recv_deadline(deadline)?;
        match frame.kind {
            FrameKind::HelloAck => {
                let ack = HelloAck::from_frame(&frame)?;
                if ack.epoch != epoch {
                    return Err(DprError::Invalid(format!(
                        "handshake echoed epoch {} != {epoch}",
                        ack.epoch
                    )));
                }
                Ok(ack)
            }
            FrameKind::Error => Err(ProtoError::from_frame(&frame)?.to_dpr_error()),
            k => Err(DprError::Invalid(format!("expected HelloAck, got {k:?}"))),
        }
    }
}

/// A synchronous TCP client multiplexing one [`DprClientSession`] over the
/// network plane: one connection per distinct server address, one batch in
/// flight at a time.
pub struct TcpClient {
    session: DprClientSession,
    epoch: u32,
    read_timeout: Duration,
    /// Distinct server connections.
    conns: Vec<FramedConn>,
    /// Shard → index into `conns`.
    routes: HashMap<ShardId, usize>,
}

impl TcpClient {
    /// Connect to each shard's server and run the session handshake.
    /// Shards sharing an address share one connection (the fan-in server
    /// hosts many shards behind one listener).
    pub fn connect(
        session: DprClientSession,
        addrs: &HashMap<ShardId, SocketAddr>,
    ) -> Result<TcpClient> {
        let mut client = TcpClient {
            session,
            epoch: 1,
            read_timeout: DEFAULT_READ_TIMEOUT,
            conns: Vec::new(),
            routes: HashMap::new(),
        };
        let deadline = Instant::now() + client.read_timeout;
        let mut by_addr: HashMap<SocketAddr, usize> = HashMap::new();
        for (&shard, &addr) in addrs {
            let idx = match by_addr.get(&addr) {
                Some(&idx) => idx,
                None => {
                    let mut conn = FramedConn::dial(addr)?;
                    conn.handshake(&client.session, client.epoch, deadline)?;
                    client.conns.push(conn);
                    let idx = client.conns.len() - 1;
                    by_addr.insert(addr, idx);
                    idx
                }
            };
            client.routes.insert(shard, idx);
        }
        Ok(client)
    }

    /// Replace the read deadline applied to every synchronous call
    /// (default [`DEFAULT_READ_TIMEOUT`]). A hung worker then surfaces as
    /// [`DprError::Timeout`] instead of blocking forever.
    pub fn set_read_timeout(&mut self, timeout: Duration) {
        self.read_timeout = timeout;
    }

    /// The underlying DPR session (commit tracking, failure handling).
    pub fn session_mut(&mut self) -> &mut DprClientSession {
        &mut self.session
    }

    /// Tear down every connection and dial again with a bumped epoch —
    /// the reconnect path after a network failure or server restart.
    /// In-flight state is per-call in this client, so nothing is replayed.
    pub fn reconnect(&mut self) -> Result<()> {
        self.epoch += 1;
        let deadline = Instant::now() + self.read_timeout;
        for conn in &mut self.conns {
            let mut fresh = FramedConn::dial(conn.addr)?;
            fresh.handshake(&self.session, self.epoch, deadline)?;
            fresh.next_seq = conn.next_seq;
            *conn = fresh;
        }
        Ok(())
    }

    fn conn_for(&mut self, shard: ShardId) -> Result<&mut FramedConn> {
        let idx = *self
            .routes
            .get(&shard)
            .ok_or_else(|| DprError::Invalid(format!("no connection to {shard}")))?;
        Ok(&mut self.conns[idx])
    }

    /// Execute a batch on `shard` synchronously over the wire.
    ///
    /// Returns [`DprError::Timeout`] if no response arrives within the
    /// configured read deadline; the connection is then left with the
    /// orphaned response still pending, so callers should
    /// [`TcpClient::reconnect`] before reusing the session.
    pub fn execute(&mut self, shard: ShardId, ops: Vec<ClusterOp>) -> Result<Vec<OpResult>> {
        let header = self.session.begin_batch(shard, ops.len() as u32)?;
        let deadline = Instant::now() + self.read_timeout;
        let conn = self.conn_for(shard)?;
        let seq = conn.next_seq;
        conn.next_seq += 1;
        let req = WireRequest { header, ops };
        conn.send(&req.to_frame(shard, seq))?;
        loop {
            let frame = conn.recv_deadline(deadline)?;
            match frame.kind {
                FrameKind::Response if frame.seq == seq => {
                    let resp = WireResponse::from_frame(&frame)?;
                    let (reply, results) = resp.outcome?;
                    self.session.process_reply(&reply)?;
                    return Ok(results);
                }
                // A stale response (e.g. from before a timeout) — skip.
                FrameKind::Response => {}
                FrameKind::Error => {
                    return Err(ProtoError::from_frame(&frame)?.to_dpr_error());
                }
                FrameKind::Goodbye => return Err(DprError::Closed),
                k => {
                    return Err(DprError::Invalid(format!(
                        "unexpected frame {k:?} awaiting response"
                    )))
                }
            }
        }
    }

    /// Fetch the DPR cut over the wire and advance this session's
    /// committed prefix, returning the new prefix length.
    ///
    /// Mirrors `SessionHandle::refresh_commit_safe`: the cut is applied
    /// only while the server is still on this session's world-line.
    pub fn refresh_commit_over_wire(&mut self) -> Result<u64> {
        let deadline = Instant::now() + self.read_timeout;
        let conn = self
            .conns
            .first_mut()
            .ok_or_else(|| DprError::Invalid("client has no connections".into()))?;
        let seq = conn.next_seq;
        conn.next_seq += 1;
        let mut req = wire::control_frame(FrameKind::CutReq, seq);
        req.shard = wire::NO_SHARD;
        conn.send(&req)?;
        loop {
            let frame = conn.recv_deadline(deadline)?;
            match frame.kind {
                FrameKind::CutResp if frame.seq == seq => {
                    let resp = CutResponse::from_frame(&frame)?;
                    let mine = self.session.world_line();
                    if resp.world_line != mine {
                        return Err(DprError::WorldLineMismatch {
                            requested: mine,
                            current: resp.world_line,
                        });
                    }
                    return Ok(self.session.refresh_commit(&resp.cut));
                }
                FrameKind::Response | FrameKind::CutResp => {}
                FrameKind::Error => {
                    return Err(ProtoError::from_frame(&frame)?.to_dpr_error());
                }
                FrameKind::Goodbye => return Err(DprError::Closed),
                k => {
                    return Err(DprError::Invalid(format!(
                        "unexpected frame {k:?} awaiting cut"
                    )))
                }
            }
        }
    }
}

/// One batch awaiting its response on a [`PipelinedClient`].
struct InflightBatch {
    shard: ShardId,
    header: BatchHeader,
    ops: Vec<ClusterOp>,
    issued_at: Instant,
    sent_at: Instant,
}

/// A completed batch surfaced by [`PipelinedClient::poll`].
pub struct Completed {
    /// The wire sequence number (as returned by [`PipelinedClient::issue`]).
    pub seq: u64,
    /// Serial of the first op in the batch.
    pub first_serial: u64,
    /// When the batch was first issued (for latency accounting).
    pub issued_at: Instant,
    /// Per-op results, or the batch's rejection.
    pub result: Result<Vec<OpResult>>,
}

/// A pipelined client session over one connection to a fan-in server: many
/// batches in flight, explicit polling, duplicate-safe retransmission, and
/// reconnect with an epoch bump. The windowing policy (how many batches to
/// keep in flight) belongs to the caller — typically the `netload`
/// closed-loop generator.
pub struct PipelinedClient {
    session: DprClientSession,
    epoch: u32,
    conn: FramedConn,
    /// Shards reachable through this connection (from the handshake).
    shards: Vec<ShardId>,
    inflight: HashMap<u64, InflightBatch>,
    /// World-line mismatch observed but not yet surfaced via poll.
    world_line_failure: Option<WorldLine>,
}

impl PipelinedClient {
    /// Dial `addr` and run the session handshake.
    pub fn connect(session: DprClientSession, addr: SocketAddr) -> Result<PipelinedClient> {
        let mut conn = FramedConn::dial(addr)?;
        let ack = conn.handshake(&session, 1, Instant::now() + DEFAULT_READ_TIMEOUT)?;
        Ok(PipelinedClient {
            session,
            epoch: 1,
            conn,
            shards: ack.shards,
            inflight: HashMap::new(),
            world_line_failure: None,
        })
    }

    /// Shards the server advertised in its handshake.
    #[must_use]
    pub fn shards(&self) -> &[ShardId] {
        &self.shards
    }

    /// The underlying DPR session.
    pub fn session_mut(&mut self) -> &mut DprClientSession {
        &mut self.session
    }

    /// Batches issued but not yet completed.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Issue one batch without waiting; returns its wire sequence number.
    pub fn issue(&mut self, shard: ShardId, ops: Vec<ClusterOp>) -> Result<u64> {
        let header = self.session.begin_batch(shard, ops.len() as u32)?;
        let seq = self.conn.next_seq;
        self.conn.next_seq += 1;
        let req = WireRequest {
            header: header.clone(),
            ops: ops.clone(),
        };
        self.conn.send(&req.to_frame(shard, seq))?;
        let now = Instant::now();
        self.inflight.insert(
            seq,
            InflightBatch {
                shard,
                header,
                ops,
                issued_at: now,
                sent_at: now,
            },
        );
        Ok(seq)
    }

    /// Fire-and-forget cut query; the answer is applied to the session's
    /// committed prefix inside [`PipelinedClient::poll`] when it arrives.
    pub fn request_cut(&mut self) -> Result<()> {
        let seq = self.conn.next_seq;
        self.conn.next_seq += 1;
        self.conn.send(&wire::control_frame(FrameKind::CutReq, seq))
    }

    /// Drain ready responses, waiting up to `wait` for bytes to arrive.
    ///
    /// Returns completed batches (order of completion). A world-line
    /// mismatch — the cluster failed and recovered underneath us — is
    /// surfaced as [`DprError::WorldLineMismatch`] *after* the completions
    /// that preceded it have been returned by earlier calls.
    pub fn poll(&mut self, wait: Duration) -> Result<Vec<Completed>> {
        self.conn.recv_available(wait)?;
        let mut out = Vec::new();
        while let Some(frame) = self.conn.pop_frame()? {
            match frame.kind {
                FrameKind::Response => {
                    let Some(batch) = self.inflight.remove(&frame.seq) else {
                        continue; // response to a superseded transmission
                    };
                    let resp = WireResponse::from_frame(&frame)?;
                    let result = match resp.outcome {
                        Ok((reply, results)) => match self.session.process_reply(&reply) {
                            Ok(()) => Ok(results),
                            Err(DprError::WorldLineMismatch { current, .. }) => {
                                self.world_line_failure = Some(current);
                                Err(DprError::WorldLineMismatch {
                                    requested: batch.header.world_line,
                                    current,
                                })
                            }
                            Err(e) => Err(e),
                        },
                        Err(e) => {
                            if let DprError::WorldLineMismatch { current, .. } = e {
                                self.world_line_failure = Some(current);
                            }
                            Err(e)
                        }
                    };
                    out.push(Completed {
                        seq: frame.seq,
                        first_serial: batch.header.first_serial,
                        issued_at: batch.issued_at,
                        result,
                    });
                }
                FrameKind::CutResp => {
                    let resp = CutResponse::from_frame(&frame)?;
                    if resp.world_line == self.session.world_line() {
                        self.session.refresh_commit(&resp.cut);
                    }
                }
                FrameKind::Error => {
                    let err = ProtoError::from_frame(&frame)?;
                    match err.code {
                        // Retryable: the batch stays in flight and will be
                        // retransmitted by `retransmit_stalled`.
                        ProtoErrorCode::DuplicateInFlight => {}
                        _ => return Err(err.to_dpr_error()),
                    }
                }
                FrameKind::Goodbye => return Err(DprError::Closed),
                k => {
                    return Err(DprError::Invalid(format!(
                        "unexpected frame {k:?} on pipelined connection"
                    )))
                }
            }
        }
        if out.is_empty() {
            if let Some(current) = self.world_line_failure {
                return Err(DprError::WorldLineMismatch {
                    requested: self.session.world_line(),
                    current,
                });
            }
        }
        Ok(out)
    }

    /// Retransmit every batch whose response has been outstanding for at
    /// least `older_than`. Safe for non-idempotent ops only when the
    /// server runs duplicate suppression (`dedupe_window > 0`); see
    /// `docs/NETWORK.md` §6. Returns the number retransmitted.
    pub fn retransmit_stalled(&mut self, older_than: Duration) -> Result<usize> {
        let now = Instant::now();
        let mut resent = 0usize;
        let stalled: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, b)| now.duration_since(b.sent_at) >= older_than)
            .map(|(&s, _)| s)
            .collect();
        for seq in stalled {
            let batch = self.inflight.get_mut(&seq).expect("collected above");
            batch.sent_at = now;
            let req = WireRequest {
                header: batch.header.clone(),
                ops: batch.ops.clone(),
            };
            let frame = req.to_frame(batch.shard, seq);
            self.conn.send(&frame)?;
            resent += 1;
        }
        Ok(resent)
    }

    /// Drop the connection, dial again with a bumped epoch, and retransmit
    /// every in-flight batch. The server's dedupe cache replays batches
    /// that executed before the disconnect, keeping them exactly-once.
    pub fn reconnect(&mut self) -> Result<()> {
        self.epoch += 1;
        let mut fresh = FramedConn::dial(self.conn.addr)?;
        let ack = fresh.handshake(
            &self.session,
            self.epoch,
            Instant::now() + DEFAULT_READ_TIMEOUT,
        )?;
        fresh.next_seq = self.conn.next_seq;
        self.conn = fresh;
        self.shards = ack.shards;
        let now = Instant::now();
        let seqs: Vec<u64> = self.inflight.keys().copied().collect();
        for seq in seqs {
            let batch = self.inflight.get_mut(&seq).expect("own key");
            batch.sent_at = now;
            let req = WireRequest {
                header: batch.header.clone(),
                ops: batch.ops.clone(),
            };
            let frame = req.to_frame(batch.shard, seq);
            self.conn.send(&frame)?;
        }
        Ok(())
    }
}
