//! Integration test: checkpoint and recovery emit the expected protocol-event
//! (span) sequence through `dpr-telemetry`.
//!
//! The span ring is process-global, so everything lives in one `#[test]` —
//! a second test in this binary would race on `clear_spans`.

use dpr_cluster::{Cluster, ClusterConfig, ClusterKind, ClusterOp};
use dpr_core::{Key, Value};
use dpr_storage::StorageProfile;
use dpr_telemetry::SpanEvent;
use std::time::Duration;

/// Index of the first span matching `(target, name, detail-substring)` at or
/// after `from`, or a panic listing the recorded events.
fn find_span(spans: &[SpanEvent], from: usize, target: &str, name: &str, detail: &str) -> usize {
    spans
        .iter()
        .enumerate()
        .skip(from)
        .find(|(_, s)| s.target == target && s.name == name && s.detail.contains(detail))
        .map(|(i, _)| i)
        .unwrap_or_else(|| {
            let log: Vec<String> = spans.iter().map(ToString::to_string).collect();
            panic!(
                "no span {target}/{name} containing {detail:?} after index {from}; events:\n{log}",
                log = log.join("\n")
            )
        })
}

#[test]
fn checkpoint_and_recovery_emit_expected_span_sequence() {
    dpr_telemetry::set_enabled(true);
    dpr_telemetry::global().clear_spans();

    let cluster = Cluster::start(ClusterConfig {
        kind: ClusterKind::DFaster,
        shards: 2,
        checkpoint_interval: Some(Duration::from_millis(10)),
        storage: StorageProfile::Null,
        finder_interval: Duration::from_millis(2),
        ..ClusterConfig::default()
    })
    .unwrap();
    let mut session = cluster.open_session().unwrap();

    for i in 0..200u64 {
        session
            .execute(vec![ClusterOp::Upsert(
                Key::from_u64(i),
                Value::from_u64(i),
            )])
            .unwrap();
    }
    session
        .wait_all_committed(cluster.cut_source(), Duration::from_secs(10))
        .unwrap();

    cluster.inject_failure().unwrap();
    cluster.wait_recovered(Duration::from_secs(10)).unwrap();
    // Second failure through the targeted path: attribution must follow
    // the index (the worker-0 shim above blames shard 0).
    cluster.inject_failure_at(1).unwrap();
    cluster.wait_recovered(Duration::from_secs(10)).unwrap();
    cluster.shutdown();

    let spans = dpr_telemetry::global().spans();

    // At least one full CPR checkpoint cycle, in phase-machine order
    // (Rest -> Prepare -> InProgress -> WaitFlush -> Rest, §5.2).
    let p = find_span(&spans, 0, "dpr-faster", "phase", "Rest -> Prepare");
    let p = find_span(
        &spans,
        p + 1,
        "dpr-faster",
        "phase",
        "Prepare -> InProgress",
    );
    let p = find_span(
        &spans,
        p + 1,
        "dpr-faster",
        "phase",
        "InProgress -> WaitFlush",
    );
    find_span(&spans, p + 1, "dpr-faster", "phase", "WaitFlush -> Rest");

    // The recovery arc: begin -> per-shard THROW/PURGE rollback -> both
    // worker_rollback acks -> complete (§4.1, §5.5).
    let begin = find_span(&spans, 0, "dpr-cluster", "recovery_begin", "2 shards");
    let t = find_span(&spans, begin + 1, "dpr-faster", "phase", "Rest -> Throw");
    let t = find_span(&spans, t + 1, "dpr-faster", "phase", "Throw -> Purge");
    find_span(&spans, t + 1, "dpr-faster", "phase", "Purge -> Rest");
    let r0 = find_span(
        &spans,
        begin + 1,
        "dpr-cluster",
        "worker_rollback",
        "shard 0",
    );
    let r1 = find_span(
        &spans,
        begin + 1,
        "dpr-cluster",
        "worker_rollback",
        "shard 1",
    );
    let complete = find_span(&spans, begin + 1, "dpr-cluster", "recovery_complete", "");
    assert!(
        r0 < complete && r1 < complete,
        "recovery_complete must follow both shard rollbacks (r0={r0}, r1={r1}, complete={complete})"
    );

    // Failure attribution (satellite: generalized `inject_failure_at`):
    // the worker-0 shim blames shard 0, the targeted call blames shard 1,
    // and the second recovery runs the full arc again.
    assert_eq!(
        begin,
        find_span(
            &spans,
            0,
            "dpr-cluster",
            "recovery_begin",
            "crashed shard 0"
        ),
        "the inject_failure shim must blame worker 0"
    );
    let begin2 = find_span(
        &spans,
        complete + 1,
        "dpr-cluster",
        "recovery_begin",
        "crashed shard 1",
    );
    let r0b = find_span(
        &spans,
        begin2 + 1,
        "dpr-cluster",
        "worker_rollback",
        "shard 0",
    );
    let r1b = find_span(
        &spans,
        begin2 + 1,
        "dpr-cluster",
        "worker_rollback",
        "shard 1",
    );
    let complete2 = find_span(&spans, begin2 + 1, "dpr-cluster", "recovery_complete", "");
    assert!(
        r0b < complete2 && r1b < complete2,
        "second recovery must also complete after both rollbacks"
    );
}
