//! Correctness under injected network and metadata latency: the protocol
//! must behave identically, just slower — and DPR's claim is precisely
//! that metadata latency stays OFF the operation critical path.

use dpr_cluster::{Cluster, ClusterConfig, ClusterKind, ClusterOp, OpResult};
use dpr_core::{Key, Value};
use std::time::{Duration, Instant};

#[test]
fn cluster_is_correct_with_network_latency() {
    let cluster = Cluster::start(ClusterConfig {
        kind: ClusterKind::DFaster,
        shards: 2,
        network_latency: Duration::from_millis(2),
        checkpoint_interval: Some(Duration::from_millis(25)),
        finder_interval: Duration::from_millis(2),
        ..ClusterConfig::default()
    })
    .unwrap();
    let mut session = cluster.open_session().unwrap();
    let t = Instant::now();
    session
        .execute(vec![ClusterOp::Upsert(
            Key::from_u64(1),
            Value::from_u64(7),
        )])
        .unwrap();
    // One round trip ≈ 2 × 2 ms.
    assert!(t.elapsed() >= Duration::from_millis(3), "latency applied");
    let results = session
        .execute(vec![ClusterOp::Read(Key::from_u64(1))])
        .unwrap();
    assert_eq!(results[0], OpResult::Value(Some(Value::from_u64(7))));
    session
        .wait_all_committed(cluster.cut_source(), Duration::from_secs(10))
        .unwrap();
    assert_eq!(session.stats().committed, 2);
    cluster.shutdown();
}

#[test]
fn metadata_latency_stays_off_the_operation_critical_path() {
    // Same workload with 0 vs 5 ms metadata statements: operation latency
    // must be unaffected (commits get slower, operations do not).
    let run = |meta_latency: Duration| -> (Duration, Duration) {
        let cluster = Cluster::start(ClusterConfig {
            kind: ClusterKind::DFaster,
            shards: 2,
            metadata_latency: meta_latency,
            checkpoint_interval: Some(Duration::from_millis(20)),
            finder_interval: Duration::from_millis(2),
            ..ClusterConfig::default()
        })
        .unwrap();
        let mut session = cluster.open_session().unwrap();
        // Measure operation latency over 50 single-op executes.
        let t = Instant::now();
        for i in 0..50u64 {
            session
                .execute(vec![ClusterOp::Upsert(
                    Key::from_u64(i),
                    Value::from_u64(i),
                )])
                .unwrap();
        }
        let op_time = t.elapsed() / 50;
        let t = Instant::now();
        session
            .wait_all_committed(cluster.cut_source(), Duration::from_secs(20))
            .unwrap();
        let commit_tail = t.elapsed();
        cluster.shutdown();
        (op_time, commit_tail)
    };
    let (fast_ops, _) = run(Duration::ZERO);
    let (slow_ops, _) = run(Duration::from_millis(5));
    // Operations are microseconds; even with 5 ms metadata statements they
    // must stay far below one metadata round trip.
    assert!(
        slow_ops < Duration::from_millis(5),
        "metadata latency leaked into the op path: {slow_ops:?} (baseline {fast_ops:?})"
    );
}
