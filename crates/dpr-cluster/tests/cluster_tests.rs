//! End-to-end tests: full D-FASTER / D-Redis clusters with client sessions,
//! commit propagation, failure injection and recovery.

use dpr_cluster::{Cluster, ClusterConfig, ClusterKind, ClusterOp, LinkFault, OpResult};
use dpr_core::{Key, RecoverabilityLevel, Value};
use dpr_storage::StorageProfile;
use std::time::{Duration, Instant};

fn base_config(kind: ClusterKind, shards: usize) -> ClusterConfig {
    ClusterConfig {
        kind,
        shards,
        checkpoint_interval: Some(Duration::from_millis(20)),
        storage: StorageProfile::Null,
        finder_interval: Duration::from_millis(2),
        ..ClusterConfig::default()
    }
}

fn ops_for_keys(range: std::ops::Range<u64>) -> Vec<ClusterOp> {
    range
        .map(|i| ClusterOp::Upsert(Key::from_u64(i), Value::from_u64(i * 10)))
        .collect()
}

#[test]
fn dfaster_cross_shard_read_write() {
    let cluster = Cluster::start(base_config(ClusterKind::DFaster, 4)).unwrap();
    let mut session = cluster.open_session().unwrap();
    session.execute(ops_for_keys(0..64)).unwrap();
    let reads: Vec<ClusterOp> = (0..64).map(|i| ClusterOp::Read(Key::from_u64(i))).collect();
    let results = session.execute(reads).unwrap();
    for (i, r) in results.iter().enumerate() {
        assert_eq!(
            *r,
            OpResult::Value(Some(Value::from_u64(i as u64 * 10))),
            "key {i}"
        );
    }
    cluster.shutdown();
}

#[test]
fn dfaster_commits_propagate_to_sessions() {
    let cluster = Cluster::start(base_config(ClusterKind::DFaster, 4)).unwrap();
    let mut session = cluster.open_session().unwrap();
    session.execute(ops_for_keys(0..32)).unwrap();
    assert_eq!(session.stats().completed, 32);
    session
        .wait_all_committed(cluster.cut_source(), Duration::from_secs(10))
        .unwrap();
    let stats = session.stats();
    assert_eq!(stats.committed, 32, "all ops committed via the DPR cut");
    assert_eq!(stats.aborted, 0);
    cluster.shutdown();
}

#[test]
fn dfaster_incr_and_delete_round_trip() {
    let cluster = Cluster::start(base_config(ClusterKind::DFaster, 2)).unwrap();
    let mut session = cluster.open_session().unwrap();
    let k = Key::from_u64(7);
    let results = session
        .execute(vec![
            ClusterOp::Incr(k.clone()),
            ClusterOp::Incr(k.clone()),
            ClusterOp::Read(k.clone()),
            ClusterOp::Delete(k.clone()),
            ClusterOp::Read(k.clone()),
        ])
        .unwrap();
    assert_eq!(results[2], OpResult::Value(Some(Value::from_u64(2))));
    assert_eq!(results[4], OpResult::Value(None));
    cluster.shutdown();
}

#[test]
fn dfaster_failure_rolls_back_uncommitted_state() {
    let mut config = base_config(ClusterKind::DFaster, 2);
    // Long checkpoint interval: writes after the explicit commit wait stay
    // uncommitted until we inject the failure.
    config.checkpoint_interval = Some(Duration::from_millis(50));
    let cluster = Cluster::start(config).unwrap();
    let mut session = cluster.open_session().unwrap();

    session
        .execute(vec![ClusterOp::Upsert(
            Key::from_u64(1),
            Value::from_u64(1),
        )])
        .unwrap();
    session
        .wait_all_committed(cluster.cut_source(), Duration::from_secs(10))
        .unwrap();

    // Uncommitted overwrite.
    session
        .execute(vec![ClusterOp::Upsert(
            Key::from_u64(1),
            Value::from_u64(99),
        )])
        .unwrap();

    cluster.inject_failure().unwrap();
    cluster.wait_recovered(Duration::from_secs(10)).unwrap();

    // The session discovers the failure on its next interaction.
    let err = session.execute(vec![ClusterOp::Read(Key::from_u64(1))]);
    assert!(err.is_err(), "old-world-line batch must be rejected");
    let survived = session.recover(Duration::from_secs(10)).unwrap();
    assert!(survived >= 1, "committed op survived");

    let results = session
        .execute(vec![ClusterOp::Read(Key::from_u64(1))])
        .unwrap();
    // The uncommitted 99 may or may not have been caught by a checkpoint
    // racing the failure; what is REQUIRED is prefix consistency: the value
    // is either the committed 1, or 99 if the overwrite committed first.
    match &results[0] {
        OpResult::Value(Some(v)) => {
            let got = v.as_u64().unwrap();
            assert!(got == 1 || got == 99, "prefix-consistent value, got {got}");
        }
        other => panic!("unexpected {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn dfaster_failure_with_slow_checkpoints_always_rolls_back() {
    let mut config = base_config(ClusterKind::DFaster, 2);
    config.checkpoint_interval = Some(Duration::from_secs(600)); // effectively never
    let cluster = Cluster::start(config).unwrap();
    let mut session = cluster.open_session().unwrap();

    // Force one commit cycle by writing and explicitly requesting commits.
    session
        .execute(vec![ClusterOp::Upsert(
            Key::from_u64(1),
            Value::from_u64(1),
        )])
        .unwrap();
    for w in cluster.workers() {
        w.store().request_commit(None);
    }
    session
        .wait_all_committed(cluster.cut_source(), Duration::from_secs(10))
        .unwrap();

    // These writes can never commit (no checkpoints will run).
    session
        .execute(vec![
            ClusterOp::Upsert(Key::from_u64(1), Value::from_u64(99)),
            ClusterOp::Upsert(Key::from_u64(50), Value::from_u64(50)),
        ])
        .unwrap();

    cluster.inject_failure().unwrap();
    cluster.wait_recovered(Duration::from_secs(10)).unwrap();
    let _ = session.execute(vec![ClusterOp::Read(Key::from_u64(1))]);
    session.recover(Duration::from_secs(10)).unwrap();
    let stats = session.stats();
    // Two uncommitted writes, plus the probing read that discovered the
    // failure (its batch was rejected on the old world-line).
    assert_eq!(stats.aborted, 3, "uncommitted ops aborted");

    let results = session
        .execute(vec![
            ClusterOp::Read(Key::from_u64(1)),
            ClusterOp::Read(Key::from_u64(50)),
        ])
        .unwrap();
    assert_eq!(
        results[0],
        OpResult::Value(Some(Value::from_u64(1))),
        "rolled back to committed value"
    );
    assert_eq!(
        results[1],
        OpResult::Value(None),
        "uncommitted insert erased"
    );
    cluster.shutdown();
}

#[test]
fn dfaster_colocated_session_fast_path() {
    let cluster = Cluster::start(base_config(ClusterKind::DFaster, 2)).unwrap();
    let mut session = cluster.open_session_colocated(0).unwrap();
    session.execute(ops_for_keys(0..32)).unwrap();
    let reads: Vec<ClusterOp> = (0..32).map(|i| ClusterOp::Read(Key::from_u64(i))).collect();
    let results = session.execute(reads).unwrap();
    assert_eq!(results.len(), 32);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(*r, OpResult::Value(Some(Value::from_u64(i as u64 * 10))));
    }
    cluster.shutdown();
}

#[test]
fn dredis_cluster_round_trip_and_commit() {
    let cluster = Cluster::start(base_config(ClusterKind::DRedis, 3)).unwrap();
    let mut session = cluster.open_session().unwrap();
    session.execute(ops_for_keys(0..30)).unwrap();
    let reads: Vec<ClusterOp> = (0..30).map(|i| ClusterOp::Read(Key::from_u64(i))).collect();
    let results = session.execute(reads).unwrap();
    for (i, r) in results.iter().enumerate() {
        assert_eq!(*r, OpResult::Value(Some(Value::from_u64(i as u64 * 10))));
    }
    session
        .wait_all_committed(cluster.cut_source(), Duration::from_secs(10))
        .unwrap();
    assert_eq!(session.stats().committed, 60);
    cluster.shutdown();
}

#[test]
fn dredis_failure_recovery() {
    let mut config = base_config(ClusterKind::DRedis, 2);
    config.checkpoint_interval = Some(Duration::from_secs(600));
    let cluster = Cluster::start(config).unwrap();
    let mut session = cluster.open_session().unwrap();
    session
        .execute(vec![ClusterOp::Upsert(
            Key::from_u64(1),
            Value::from_u64(1),
        )])
        .unwrap();
    for w in cluster.workers() {
        w.store().request_commit(None);
    }
    session
        .wait_all_committed(cluster.cut_source(), Duration::from_secs(10))
        .unwrap();
    session
        .execute(vec![ClusterOp::Upsert(
            Key::from_u64(1),
            Value::from_u64(99),
        )])
        .unwrap();
    cluster.inject_failure().unwrap();
    cluster.wait_recovered(Duration::from_secs(10)).unwrap();
    let _ = session.execute(vec![ClusterOp::Read(Key::from_u64(1))]);
    session.recover(Duration::from_secs(10)).unwrap();
    let results = session
        .execute(vec![ClusterOp::Read(Key::from_u64(1))])
        .unwrap();
    assert_eq!(results[0], OpResult::Value(Some(Value::from_u64(1))));
    cluster.shutdown();
}

#[test]
fn sync_recoverability_commits_immediately() {
    let mut config = base_config(ClusterKind::DFaster, 2);
    config.recoverability = RecoverabilityLevel::Synchronous;
    let cluster = Cluster::start(config).unwrap();
    let mut session = cluster.open_session().unwrap();
    session.execute(ops_for_keys(0..8)).unwrap();
    // Under sync recoverability every batch waited for durability.
    for w in cluster.workers() {
        assert!(
            w.store().durable_version() >= dpr_core::Version(1) || w.executed_ops() == 0,
            "executed shard must be durable"
        );
    }
    cluster.shutdown();
}

#[test]
fn none_recoverability_never_checkpoints() {
    let mut config = base_config(ClusterKind::DFaster, 2);
    config.recoverability = RecoverabilityLevel::None;
    let cluster = Cluster::start(config).unwrap();
    let mut session = cluster.open_session().unwrap();
    session.execute(ops_for_keys(0..16)).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    for w in cluster.workers() {
        assert_eq!(w.store().durable_version(), dpr_core::Version::ZERO);
    }
    cluster.shutdown();
}

#[test]
fn multiple_sessions_interleave() {
    let cluster = Cluster::start(base_config(ClusterKind::DFaster, 4)).unwrap();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let mut session = cluster.open_session().unwrap();
            s.spawn(move || {
                for round in 0..10u64 {
                    let ops: Vec<ClusterOp> = (0..16)
                        .map(|i| {
                            ClusterOp::Upsert(
                                Key::from_u64(t * 1000 + round * 16 + i),
                                Value::from_u64(i),
                            )
                        })
                        .collect();
                    session.execute(ops).unwrap();
                }
                assert_eq!(session.stats().completed, 160);
            });
        }
    });
    assert_eq!(cluster.total_executed(), 4 * 160);
    cluster.shutdown();
}

#[test]
fn windowed_async_issue_and_poll() {
    let cluster = Cluster::start(base_config(ClusterKind::DFaster, 4)).unwrap();
    let mut session = cluster.open_session().unwrap();
    let window = 256u64;
    let mut issued = 0u64;
    let total = 2000u64;
    while session.stats().completed < total {
        while issued < total && session.inflight_ops() < window {
            let ops: Vec<ClusterOp> = (issued..issued + 16)
                .map(|i| ClusterOp::Upsert(Key::from_u64(i % 500), Value::from_u64(i)))
                .collect();
            session.issue(ops).unwrap();
            issued += 16;
        }
        session.poll(true, Duration::from_millis(100)).unwrap();
    }
    assert_eq!(session.stats().completed, total);
    session
        .wait_all_committed(cluster.cut_source(), Duration::from_secs(10))
        .unwrap();
    assert_eq!(session.stats().committed, total);
    cluster.shutdown();
}

#[test]
fn inject_failure_at_invalid_index_is_an_error() {
    let cluster = Cluster::start(base_config(ClusterKind::DFaster, 2)).unwrap();
    assert!(
        cluster.inject_failure_at(5).is_err(),
        "index 5 on a 2-worker cluster must be rejected"
    );
    // The rejected call must not have disturbed the cluster.
    let mut session = cluster.open_session().unwrap();
    session.execute(ops_for_keys(0..8)).unwrap();
    assert_eq!(session.stats().completed, 8);
    cluster.shutdown();
}

#[test]
fn lossy_links_with_dedupe_apply_increments_exactly_once() {
    // Non-idempotent Incrs over links that drop both requests and replies.
    // A dropped request is repaired by `resend_stalled`; a dropped *reply*
    // makes the client resend a batch the worker already executed, so the
    // worker's dedupe cache must answer without re-applying (§7.2).
    let mut config = base_config(ClusterKind::DFaster, 2);
    config.dedupe_window = 64;
    let cluster = Cluster::start(config).unwrap();
    cluster.network().set_fault_seed(0xBAD_CAFE);
    let mut session = cluster.open_session().unwrap();
    let key = Key::from_u64(77);
    const INCRS: u64 = 50;

    let lossy = LinkFault {
        drop_rate: 0.3,
        ..LinkFault::default()
    };
    for idx in 0..2 {
        let ep = cluster.worker_endpoint(idx).unwrap();
        cluster.network().set_link_fault(ep, lossy);
    }
    cluster.network().set_link_fault(session.endpoint(), lossy);

    let deadline = Instant::now() + Duration::from_secs(30);
    let mut issued = 0u64;
    while session.stats().completed < INCRS {
        assert!(
            Instant::now() < deadline,
            "lossy-link retry loop did not converge ({} of {INCRS} done)",
            session.stats().completed
        );
        if issued < INCRS && session.inflight_ops() < 8 {
            session.issue(vec![ClusterOp::Incr(key.clone())]).unwrap();
            issued += 1;
        }
        session.poll(false, Duration::from_millis(5)).unwrap();
        session.resend_stalled(Duration::from_millis(10)).unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }

    cluster.network().clear_all_link_faults();
    let results = session.execute(vec![ClusterOp::Read(key)]).unwrap();
    assert_eq!(
        results[0],
        OpResult::Value(Some(Value::from_u64(INCRS))),
        "increments lost or double-applied across the lossy link"
    );
    cluster.shutdown();
}

#[test]
fn nested_failures_are_handled_as_sequential_recoveries() {
    let mut config = base_config(ClusterKind::DFaster, 2);
    config.checkpoint_interval = Some(Duration::from_millis(10));
    let cluster = Cluster::start(config).unwrap();
    let mut session = cluster.open_session().unwrap();
    session.execute(ops_for_keys(0..16)).unwrap();
    // First failure.
    cluster.inject_failure().unwrap();
    cluster.wait_recovered(Duration::from_secs(10)).unwrap();
    // Second failure immediately after (the §7.4 nested scenario).
    cluster.inject_failure().unwrap();
    cluster.wait_recovered(Duration::from_secs(10)).unwrap();
    let _ = session.execute(vec![ClusterOp::Read(Key::from_u64(0))]);
    session.recover(Duration::from_secs(10)).unwrap();
    // The cluster is functional on world-line 2.
    assert_eq!(session.world_line(), dpr_core::WorldLine(2));
    session.execute(ops_for_keys(100..110)).unwrap();
    session
        .wait_all_committed(cluster.cut_source(), Duration::from_secs(10))
        .unwrap();
    cluster.shutdown();
}
