//! Property tests for the transport fault hooks (chaos harness support).
//!
//! Under arbitrary schedules of slow/lossy/partition faults interleaved
//! with sends, the simulated network must preserve per-link FIFO order of
//! delivered messages, account for every message (delivered + dropped +
//! parked == sent), and shut down without deadlocking even with messages
//! parked behind a partition.

use dpr_cluster::message::{Message, ResponseMsg};
use dpr_cluster::{EndpointId, LinkFault, SimNetwork};
use dpr_core::DprError;
use proptest::prelude::*;
use std::time::Duration;

#[derive(Debug, Clone)]
enum FaultAction {
    /// Install a slow link with this extra delay in milliseconds.
    Slow(u8),
    /// Install a lossy link with this drop percentage.
    Lossy(u8),
    /// Partition the link (messages park until heal).
    Partition,
    /// Clear the link fault, releasing parked messages.
    Heal,
    /// Send this many sequence-numbered messages.
    SendBurst(u8),
}

fn action_strategy() -> impl Strategy<Value = FaultAction> {
    prop_oneof![
        2 => (0..8u8).prop_map(FaultAction::Slow),
        2 => (0..60u8).prop_map(FaultAction::Lossy),
        1 => Just(FaultAction::Partition),
        2 => Just(FaultAction::Heal),
        5 => (1..12u8).prop_map(FaultAction::SendBurst),
    ]
}

fn numbered(serial: u64) -> Message {
    Message::Response(ResponseMsg {
        session: None,
        first_serial: serial,
        op_count: 1,
        outcome: Err(DprError::Timeout),
    })
}

fn serial_of(msg: &Message) -> u64 {
    match msg {
        Message::Response(r) => r.first_serial,
        Message::Request(_) => panic!("unexpected request"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Per-link FIFO survives arbitrary delay/drop/partition schedules:
    /// the serials delivered to each endpoint are a strictly increasing
    /// subsequence of the serials sent to it, and every sent message is
    /// either delivered or dropped once all faults are healed.
    #[test]
    fn fifo_and_accounting_under_arbitrary_fault_schedules(
        schedules in prop::collection::vec(
            prop::collection::vec(action_strategy(), 1..24), 2..3),
        seed in 0..u64::MAX,
    ) {
        let net = SimNetwork::new(Duration::ZERO);
        net.set_fault_seed(seed);
        let links: Vec<(EndpointId, _)> =
            schedules.iter().map(|_| net.register()).collect();
        let mut sent = vec![0u64; links.len()];
        // Interleave the per-link schedules round-robin so faults on one
        // link overlap traffic on the other.
        let longest = schedules.iter().map(Vec::len).max().unwrap_or(0);
        for step in 0..longest {
            for (i, schedule) in schedules.iter().enumerate() {
                let Some(action) = schedule.get(step) else { continue };
                let (id, _) = links[i];
                match action {
                    FaultAction::Slow(ms) => net.set_link_fault(id, LinkFault {
                        extra_delay: Duration::from_millis(u64::from(*ms)),
                        ..LinkFault::default()
                    }),
                    FaultAction::Lossy(pct) => net.set_link_fault(id, LinkFault {
                        drop_rate: f64::from(*pct) / 100.0,
                        ..LinkFault::default()
                    }),
                    FaultAction::Partition => net.set_link_fault(id, LinkFault {
                        partitioned: true,
                        ..LinkFault::default()
                    }),
                    FaultAction::Heal => net.clear_link_fault(id),
                    FaultAction::SendBurst(n) => {
                        for _ in 0..*n {
                            net.send(id, numbered(sent[i])).unwrap();
                            sent[i] += 1;
                        }
                    }
                }
            }
        }
        net.clear_all_link_faults();
        // Drain every link: delivered serials must be strictly increasing
        // (per-link FIFO, drops allowed), and together with the drop
        // counter account for every send.
        let mut delivered_total = 0u64;
        for (i, (_, rx)) in links.iter().enumerate() {
            let mut last: Option<u64> = None;
            while let Ok(msg) = rx.recv_timeout(Duration::from_millis(200)) {
                let serial = serial_of(&msg);
                if let Some(prev) = last {
                    prop_assert!(serial > prev,
                        "link {} delivered {} after {}", i, serial, prev);
                }
                prop_assert!(serial < sent[i], "link {} unknown serial", i);
                last = Some(serial);
                delivered_total += 1;
            }
        }
        let total_sent: u64 = sent.iter().sum();
        prop_assert_eq!(delivered_total + net.dropped_count(), total_sent,
            "every message delivered or dropped after heal");
        // Shutdown must complete promptly even right after heavy traffic.
        net.shutdown();
        prop_assert!(net.send(links[0].0, numbered(0)).is_err());
    }

    /// Shutdown with messages still parked behind a partition neither
    /// deadlocks nor panics, and subsequent sends report closure.
    #[test]
    fn shutdown_never_deadlocks_with_parked_messages(
        n_parked in 1..32u64,
        latency_ms in 0..5u64,
    ) {
        let net = SimNetwork::new(Duration::from_millis(latency_ms));
        let (id, rx) = net.register();
        net.set_link_fault(id, LinkFault {
            partitioned: true,
            ..LinkFault::default()
        });
        for i in 0..n_parked {
            net.send(id, numbered(i)).unwrap();
        }
        net.shutdown();
        prop_assert!(matches!(net.send(id, numbered(0)), Err(DprError::Closed)));
        // Parked messages are simply discarded at shutdown.
        prop_assert!(rx.recv_timeout(Duration::from_millis(50)).is_err());
    }
}
