//! Cluster membership changes: partition migration, worker addition and
//! removal (§5.3).

use dpr_cluster::{Cluster, ClusterConfig, ClusterKind, ClusterOp, OpResult};
use dpr_core::{Key, Value};
use std::time::Duration;

fn config(kind: ClusterKind, shards: usize) -> ClusterConfig {
    ClusterConfig {
        kind,
        shards,
        partitions: 16,
        checkpoint_interval: Some(Duration::from_millis(20)),
        finder_interval: Duration::from_millis(2),
        ..ClusterConfig::default()
    }
}

fn load(cluster: &Cluster, n: u64) {
    let mut session = cluster.open_session().unwrap();
    let ops: Vec<ClusterOp> = (0..n)
        .map(|i| ClusterOp::Upsert(Key::from_u64(i), Value::from_u64(i * 7)))
        .collect();
    session.execute(ops).unwrap();
}

fn verify(cluster: &Cluster, n: u64) {
    let mut session = cluster.open_session().unwrap();
    let reads: Vec<ClusterOp> = (0..n).map(|i| ClusterOp::Read(Key::from_u64(i))).collect();
    let results = session.execute(reads).unwrap();
    for (i, r) in results.iter().enumerate() {
        assert_eq!(
            *r,
            OpResult::Value(Some(Value::from_u64(i as u64 * 7))),
            "key {i} after membership change"
        );
    }
}

#[test]
fn migrate_single_partition_preserves_data() {
    let cluster = Cluster::start(config(ClusterKind::DFaster, 2)).unwrap();
    load(&cluster, 200);
    // Move every partition owned by worker 0 to worker 1, one at a time.
    let owned = {
        let shard0 = cluster.workers()[0].shard();
        // Probe ownership through the public API: find a partition worker 0
        // owns by checking keys.
        let mut vps = std::collections::BTreeSet::new();
        for k in 0..200u64 {
            let key = Key::from_u64(k);
            if cluster.owner_of(&key).unwrap() == shard0 {
                vps.insert(dpr_metadata::VirtualPartition((key.hash64() % 16) as u32));
            }
        }
        vps
    };
    assert!(!owned.is_empty());
    let vp = *owned.iter().next().unwrap();
    let moved = cluster.migrate_partition(vp, 0, 1).unwrap();
    assert!(moved > 0, "partition had keys");
    // All data still readable, now served by the new owner.
    verify(&cluster, 200);
    cluster.shutdown();
}

#[test]
fn add_worker_rebalances_and_serves() {
    let mut cluster = Cluster::start(config(ClusterKind::DFaster, 2)).unwrap();
    load(&cluster, 300);
    let new_shard = cluster.add_worker().unwrap();
    assert_eq!(cluster.workers().len(), 3);
    // The new worker owns a share of partitions.
    let mut new_owner_keys = 0;
    for k in 0..300u64 {
        if cluster.owner_of(&Key::from_u64(k)).unwrap() == new_shard {
            new_owner_keys += 1;
        }
    }
    assert!(new_owner_keys > 0, "new worker must own some keys");
    verify(&cluster, 300);
    // New writes to migrated keys work and commit.
    let mut session = cluster.open_session().unwrap();
    session
        .execute(vec![ClusterOp::Upsert(
            Key::from_u64(1),
            Value::from_u64(999),
        )])
        .unwrap();
    session
        .wait_all_committed(cluster.cut_source(), Duration::from_secs(10))
        .unwrap();
    cluster.shutdown();
}

#[test]
fn remove_worker_migrates_everything_away() {
    let mut cluster = Cluster::start(config(ClusterKind::DFaster, 3)).unwrap();
    load(&cluster, 300);
    cluster.remove_worker(2).unwrap();
    assert_eq!(cluster.workers().len(), 2);
    verify(&cluster, 300);
    // Commits still flow with the smaller membership.
    let mut session = cluster.open_session().unwrap();
    session
        .execute(vec![ClusterOp::Upsert(
            Key::from_u64(5),
            Value::from_u64(1),
        )])
        .unwrap();
    session
        .wait_all_committed(cluster.cut_source(), Duration::from_secs(10))
        .unwrap();
    cluster.shutdown();
}

#[test]
fn dredis_migration_works_too() {
    let cluster = Cluster::start(config(ClusterKind::DRedis, 2)).unwrap();
    load(&cluster, 100);
    // Find a partition owned by worker 0 and move it.
    let shard0 = cluster.workers()[0].shard();
    let vp = (0..16u32)
        .map(dpr_metadata::VirtualPartition)
        .find(|vp| {
            (0..100u64).any(|k| {
                let key = Key::from_u64(k);
                (key.hash64() % 16) as u32 == vp.0
                    && cluster.owner_of(&key).map(|o| o == shard0).unwrap_or(false)
            })
        })
        .expect("worker 0 owns something");
    cluster.migrate_partition(vp, 0, 1).unwrap();
    verify(&cluster, 100);
    cluster.shutdown();
}

#[test]
fn migration_under_concurrent_increments_is_exactly_once() {
    // A non-idempotent workload (Incr on one key) races the partition it
    // lives in being migrated back and forth. Every increment must apply
    // exactly once: a lost effect or a double-apply both show up in the
    // final counter.
    let cluster = Cluster::start(config(ClusterKind::DFaster, 2)).unwrap();
    let key = Key::from_u64(4242);
    let vp = dpr_metadata::VirtualPartition((key.hash64() % 16) as u32);
    const INCRS: u64 = 300;

    std::thread::scope(|scope| {
        let c = &cluster;
        let k = key.clone();
        let writer = scope.spawn(move || {
            let mut session = c.open_session().unwrap();
            for _ in 0..INCRS {
                session.execute(vec![ClusterOp::Incr(k.clone())]).unwrap();
            }
        });
        // Bounce the partition between the two workers while the
        // increments flow.
        for _ in 0..6 {
            let owner = c.owner_of(&key).unwrap();
            let from = c
                .workers()
                .iter()
                .position(|w| w.shard() == owner)
                .expect("owner is a live worker");
            let to = (from + 1) % 2;
            c.migrate_partition(vp, from, to).unwrap();
            std::thread::sleep(Duration::from_millis(15));
        }
        writer.join().unwrap();
    });

    let mut session = cluster.open_session().unwrap();
    let results = session.execute(vec![ClusterOp::Read(key)]).unwrap();
    assert_eq!(
        results[0],
        OpResult::Value(Some(Value::from_u64(INCRS))),
        "increments lost or duplicated across migrations"
    );
    cluster.shutdown();
}

#[test]
fn client_with_inflight_batches_survives_migration() {
    // Writes racing an ownership transfer are re-routed by the client and
    // none are lost.
    let cluster = Cluster::start(config(ClusterKind::DFaster, 2)).unwrap();
    load(&cluster, 100);
    let shard0 = cluster.workers()[0].shard();
    let vp = (0..16u32)
        .map(dpr_metadata::VirtualPartition)
        .find(|vp| {
            (0..100u64).any(|k| {
                let key = Key::from_u64(k);
                (key.hash64() % 16) as u32 == vp.0
                    && cluster.owner_of(&key).map(|o| o == shard0).unwrap_or(false)
            })
        })
        .unwrap();

    std::thread::scope(|scope| {
        let c = &cluster;
        let writer = scope.spawn(move || {
            let mut session = c.open_session().unwrap();
            for round in 0..40u64 {
                let ops: Vec<ClusterOp> = (0..100)
                    .map(|i| ClusterOp::Upsert(Key::from_u64(i), Value::from_u64(round)))
                    .collect();
                session.execute(ops).unwrap();
            }
            session.stats().completed
        });
        std::thread::sleep(Duration::from_millis(20));
        c.migrate_partition(vp, 0, 1).unwrap();
        let completed = writer.join().unwrap();
        assert_eq!(completed, 4000, "no op lost across the transfer");
    });
    cluster.shutdown();
}
