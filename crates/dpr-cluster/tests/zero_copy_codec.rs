//! Zero-copy wire codec acceptance tests.
//!
//! Two claims are checked here:
//!
//! 1. **Allocation-freedom**: steady-state encode (request + response) and
//!    request decode perform *zero* heap allocations per frame once
//!    buffers are warm, measured by a per-thread counting allocator (so
//!    concurrently running tests cannot pollute the count).
//! 2. **Equivalence**: the direct (pooled-buffer) encoders/decoders are
//!    byte- and value-identical to the owned `Frame`/`Vec` codec tier,
//!    over randomized batches covering inline (≤ 24 B) and shared (> 24 B)
//!    key/value sizes.

use bytes::Bytes;
use dpr_cluster::wire::{
    self, Frame, FrameKind, ProtoError, ProtoErrorCode, WireRequest, WireResponse,
};
use dpr_cluster::{ClusterOp, OpResult};
use dpr_core::{BufferPool, DprError, Key, SessionId, ShardId, Token, Value, Version, WorldLine};
use libdpr::{BatchHeader, BatchReply};
use proptest::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

// ---------------------------------------------------------------------------
// Per-thread counting allocator: the whole test binary runs under it, and
// each test thread reads only its own counter.
// ---------------------------------------------------------------------------

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates to `System`; the only addition is a const-initialized
// thread-local counter bump (no lazy TLS init, so no recursive allocation).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn my_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

// ---------------------------------------------------------------------------
// Allocation-freedom
// ---------------------------------------------------------------------------

fn steady_header(session: u64, first_serial: u64) -> BatchHeader {
    BatchHeader {
        session: SessionId(session),
        world_line: WorldLine(1),
        version_lower_bound: Version(1),
        // Empty deps: `Vec::new()` never allocates. (Batches carrying
        // cross-shard deps pay one Vec per batch on decode, by design.)
        deps: Vec::new(),
        first_serial,
        op_count: 4,
    }
}

/// One full server-side frame cycle out of warm buffers: encode a request,
/// lift the body into a pooled shared buffer, decode it zero-copy, then
/// encode the response. Returns the decoded op count (consumed by the
/// assertion so nothing is optimised away).
fn request_response_cycle(
    enc: &mut Vec<u8>,
    resp: &mut Vec<u8>,
    ops: &[ClusterOp],
    decoded: &mut Vec<ClusterOp>,
    results: &[OpResult],
    serial: u64,
) -> usize {
    let header = steady_header(7, serial);
    enc.clear();
    wire::encode_request(enc, ShardId(3), serial, &header, ops);

    let h = wire::decode_header(enc).unwrap().expect("complete frame");
    let body_bytes = &enc[wire::FRAME_HEADER_LEN..h.frame_len()];
    let mut lease = BufferPool::global().acquire_shared(body_bytes.len());
    lease.data_mut()[..body_bytes.len()].copy_from_slice(body_bytes);
    let body = lease.freeze(body_bytes.len());

    decoded.clear();
    let got = wire::decode_request_body(&body, decoded).expect("decode request");
    assert_eq!(got.first_serial, serial);

    let reply = BatchReply {
        shard: ShardId(3),
        world_line: WorldLine(1),
        version: Version(2),
        first_serial: serial,
        op_count: ops.len() as u32,
    };
    resp.clear();
    wire::encode_response(resp, 3, serial, Ok((&reply, results)));
    decoded.len()
}

#[test]
fn steady_state_frame_cycle_allocates_nothing() {
    // Small (≤ 24 B) keys and values are inlined by `Bytes`, so neither
    // encoding nor zero-copy decoding of the paper's 8-byte workload
    // should ever touch the heap once buffers are warm.
    let ops = vec![
        ClusterOp::Upsert(Key::from_u64(1), Value::from_u64(10)),
        ClusterOp::Read(Key::from_u64(2)),
        ClusterOp::Incr(Key::from_u64(3)),
        ClusterOp::Delete(Key::from_u64(4)),
    ];
    let results = vec![
        OpResult::Done,
        OpResult::Value(Some(Value::from_u64(10))),
        OpResult::Done,
        OpResult::Done,
    ];
    let mut enc: Vec<u8> = Vec::with_capacity(8 << 10);
    let mut resp: Vec<u8> = Vec::with_capacity(8 << 10);
    let mut decoded: Vec<ClusterOp> = Vec::with_capacity(16);

    // Warm-up: pool stripes, scratch growth, telemetry registration.
    for i in 0..64 {
        request_response_cycle(&mut enc, &mut resp, &ops, &mut decoded, &results, i);
    }

    const ROUNDS: u64 = 1000;
    let before = my_allocs();
    let mut total = 0usize;
    for i in 0..ROUNDS {
        total += request_response_cycle(&mut enc, &mut resp, &ops, &mut decoded, &results, 64 + i);
    }
    let allocated = my_allocs() - before;
    assert_eq!(total, ops.len() * ROUNDS as usize);
    assert_eq!(
        allocated, 0,
        "steady-state encode/decode must not allocate ({allocated} allocations in {ROUNDS} frames)"
    );
}

#[test]
fn large_values_stay_zero_copy_views_of_the_pooled_body() {
    // A value above the inline cap decodes as a slice of the pooled body:
    // no copy, no per-value allocation.
    let big = Value(Bytes::copy_from_slice(&[0xAB; 100]));
    let ops = vec![ClusterOp::Upsert(Key::from_u64(1), big)];
    let header = steady_header(9, 1);
    let mut enc = Vec::new();
    wire::encode_request(&mut enc, ShardId(0), 1, &header, &ops);

    let h = wire::decode_header(&enc).unwrap().expect("complete");
    let body_bytes = &enc[wire::FRAME_HEADER_LEN..h.frame_len()];
    let mut lease = BufferPool::global().acquire_shared(body_bytes.len());
    lease.data_mut()[..body_bytes.len()].copy_from_slice(body_bytes);
    let body = lease.freeze(body_bytes.len());

    let mut decoded = Vec::new();
    wire::decode_request_body(&body, &mut decoded).unwrap();
    let ClusterOp::Upsert(_, v) = &decoded[0] else {
        panic!("expected upsert");
    };
    let body_range = body.as_slice().as_ptr_range();
    let value_range = v.0.as_slice().as_ptr_range();
    assert!(
        body_range.contains(&value_range.start),
        "decoded value must point into the pooled frame body"
    );
}

// ---------------------------------------------------------------------------
// Equivalence with the owned codec tier
// ---------------------------------------------------------------------------

fn key_strategy() -> impl Strategy<Value = Key> {
    // Cover inline (≤ 24 B) and shared (> 24 B) representations.
    prop::collection::vec(0..255u8, 1..64).prop_map(|b| Key(Bytes::copy_from_slice(&b)))
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop::collection::vec(0..255u8, 0..64).prop_map(|b| Value(Bytes::copy_from_slice(&b)))
}

fn op_strategy() -> impl Strategy<Value = ClusterOp> {
    prop_oneof![
        key_strategy().prop_map(ClusterOp::Read),
        (key_strategy(), value_strategy()).prop_map(|(k, v)| ClusterOp::Upsert(k, v)),
        key_strategy().prop_map(ClusterOp::Incr),
        key_strategy().prop_map(ClusterOp::Delete),
    ]
}

fn header_strategy() -> impl Strategy<Value = BatchHeader> {
    (
        (0..u64::MAX, 1..10u64, 0..100u64),
        prop::collection::vec((0..16u32, 1..1000u64), 0..4),
        (0..u64::MAX, 0..256u32),
    )
        .prop_map(
            |((session, wl, lb), deps, (first_serial, op_count))| BatchHeader {
                session: SessionId(session),
                world_line: WorldLine(wl),
                version_lower_bound: Version(lb),
                deps: deps
                    .into_iter()
                    .map(|(s, v)| Token::new(ShardId(s), Version(v)))
                    .collect(),
                first_serial,
                op_count,
            },
        )
}

fn result_strategy() -> impl Strategy<Value = OpResult> {
    prop_oneof![
        Just(OpResult::Done),
        Just(OpResult::Value(None)),
        value_strategy().prop_map(|v| OpResult::Value(Some(v))),
    ]
}

fn string_strategy(max_len: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(32..127u8, 0..max_len)
        .prop_map(|b| b.into_iter().map(char::from).collect())
}

fn error_strategy() -> impl Strategy<Value = DprError> {
    prop_oneof![
        (1..10u64, 1..10u64).prop_map(|(a, b)| DprError::WorldLineMismatch {
            requested: WorldLine(a),
            current: WorldLine(b),
        }),
        Just(DprError::Recovering),
        Just(DprError::Closed),
        Just(DprError::Timeout),
        string_strategy(40).prop_map(DprError::Invalid),
        string_strategy(40).prop_map(DprError::Storage),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn direct_request_encode_matches_owned_codec(
        header in header_strategy(),
        ops in prop::collection::vec(op_strategy(), 0..32),
        shard in 0..64u32,
        seq in 0..u64::MAX,
    ) {
        // Direct encoder vs owned to_frame + encode_into: identical bytes.
        let mut direct = Vec::new();
        wire::encode_request(&mut direct, ShardId(shard), seq, &header, &ops);
        let owned = WireRequest { header: header.clone(), ops: ops.clone() };
        let mut via_frame = Vec::new();
        owned.to_frame(ShardId(shard), seq).encode_into(&mut via_frame);
        prop_assert_eq!(&direct, &via_frame);

        // Owned decode vs pooled zero-copy decode: identical values.
        let (frame, used) = wire::decode_frame(&direct).unwrap().expect("complete");
        prop_assert_eq!(used, direct.len());
        let owned_decoded = WireRequest::from_frame(&frame).unwrap();

        let h = wire::decode_header(&direct).unwrap().expect("complete");
        let body_bytes = &direct[wire::FRAME_HEADER_LEN..h.frame_len()];
        let mut lease = BufferPool::global().acquire_shared(body_bytes.len().max(1));
        lease.data_mut()[..body_bytes.len()].copy_from_slice(body_bytes);
        let body = lease.freeze(body_bytes.len());
        let mut pooled_ops = Vec::new();
        let pooled_header = wire::decode_request_body(&body, &mut pooled_ops).unwrap();

        prop_assert_eq!(h.kind, FrameKind::Request);
        prop_assert_eq!(h.shard, shard);
        prop_assert_eq!(h.seq, seq);
        prop_assert_eq!(&pooled_header, &owned_decoded.header);
        prop_assert_eq!(&pooled_ops, &owned_decoded.ops);
        prop_assert_eq!(&pooled_header, &header);
        prop_assert_eq!(&pooled_ops, &ops);
    }

    #[test]
    fn direct_response_encode_matches_owned_codec(
        reply_version in 1..1000u64,
        first_serial in 0..u64::MAX,
        results in prop::collection::vec(result_strategy(), 0..32),
        shard in 0..64u32,
        seq in 0..u64::MAX,
    ) {
        let reply = BatchReply {
            shard: ShardId(shard),
            world_line: WorldLine(1),
            version: Version(reply_version),
            first_serial,
            op_count: results.len() as u32,
        };
        let mut direct = Vec::new();
        wire::encode_response(&mut direct, shard, seq, Ok((&reply, &results)));
        let owned = WireResponse { outcome: Ok((reply.clone(), results.clone())) };
        let mut via_frame = Vec::new();
        owned.to_frame(shard, seq).encode_into(&mut via_frame);
        prop_assert_eq!(&direct, &via_frame);

        // Pooled zero-copy decode round-trips the outcome.
        let h = wire::decode_header(&direct).unwrap().expect("complete");
        let body_bytes = &direct[wire::FRAME_HEADER_LEN..h.frame_len()];
        let mut lease = BufferPool::global().acquire_shared(body_bytes.len().max(1));
        lease.data_mut()[..body_bytes.len()].copy_from_slice(body_bytes);
        let body = lease.freeze(body_bytes.len());
        let decoded = WireResponse::from_body(&body).unwrap();
        let (dreply, dresults) = decoded.outcome.expect("ok outcome");
        prop_assert_eq!(&dreply, &reply);
        prop_assert_eq!(&dresults, &results);
    }

    #[test]
    fn error_response_encode_matches_owned_codec(
        err in error_strategy(),
        shard in 0..64u32,
        seq in 0..u64::MAX,
    ) {
        let mut direct = Vec::new();
        wire::encode_response(&mut direct, shard, seq, Err(&err));
        let owned = WireResponse { outcome: Err(err) };
        let mut via_frame = Vec::new();
        owned.to_frame(shard, seq).encode_into(&mut via_frame);
        prop_assert_eq!(&direct, &via_frame);

        let (frame, _) = wire::decode_frame(&direct).unwrap().expect("complete");
        let decoded = WireResponse::from_frame(&frame).unwrap();
        prop_assert!(decoded.outcome.is_err());
    }

    #[test]
    fn proto_error_and_control_frames_match_owned_codec(
        code_idx in 0..7usize,
        detail in string_strategy(60),
        seq in 0..u64::MAX,
    ) {
        let codes = [
            ProtoErrorCode::UnsupportedVersion,
            ProtoErrorCode::BadFrame,
            ProtoErrorCode::HandshakeRequired,
            ProtoErrorCode::StaleEpoch,
            ProtoErrorCode::UnknownShard,
            ProtoErrorCode::DuplicateInFlight,
            ProtoErrorCode::Shutdown,
        ];
        let err = ProtoError { code: codes[code_idx], detail };
        let mut direct = Vec::new();
        err.encode(&mut direct, seq);
        let mut via_frame = Vec::new();
        err.to_frame(seq).encode_into(&mut via_frame);
        prop_assert_eq!(&direct, &via_frame);

        let mut ctl = Vec::new();
        wire::encode_control(&mut ctl, FrameKind::CutReq, seq);
        let mut ctl_frame = Vec::new();
        Frame { kind: FrameKind::CutReq, shard: wire::NO_SHARD, seq, body: Bytes::new() }
            .encode_into(&mut ctl_frame);
        prop_assert_eq!(&ctl, &ctl_frame);
    }
}
