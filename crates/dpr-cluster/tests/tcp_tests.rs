//! The TCP serving layer: the same protocol over real sockets.

use dpr_cluster::tcp::{serve_worker, TcpClient};
use dpr_cluster::{Cluster, ClusterConfig, ClusterOp, OpResult};
use dpr_core::{Key, SessionId, ShardId, Value};
use libdpr::DprClientSession;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tcp_cluster(
    shards: usize,
) -> (
    Cluster,
    HashMap<ShardId, SocketAddr>,
    Arc<AtomicBool>,
    Vec<std::thread::JoinHandle<()>>,
) {
    let cluster = Cluster::start(ClusterConfig {
        shards,
        checkpoint_interval: Some(Duration::from_millis(20)),
        finder_interval: Duration::from_millis(2),
        ..ClusterConfig::default()
    })
    .unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let mut addrs = HashMap::new();
    let mut handles = Vec::new();
    for w in cluster.workers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        addrs.insert(w.shard(), listener.local_addr().unwrap());
        handles.push(serve_worker(w.clone(), listener, stop.clone()));
    }
    (cluster, addrs, stop, handles)
}

#[test]
fn ops_and_commits_flow_over_real_sockets() {
    let (cluster, addrs, stop, handles) = tcp_cluster(2);
    let mut client = TcpClient::connect(DprClientSession::new(SessionId(100)), &addrs).unwrap();

    // Route keys the same way the cluster does and write over TCP.
    for i in 0..50u64 {
        let key = Key::from_u64(i);
        let shard = cluster.owner_of(&key).unwrap();
        let results = client
            .execute(shard, vec![ClusterOp::Upsert(key, Value::from_u64(i * 2))])
            .unwrap();
        assert_eq!(results, vec![OpResult::Done]);
    }
    // Read back over TCP.
    for i in 0..50u64 {
        let key = Key::from_u64(i);
        let shard = cluster.owner_of(&key).unwrap();
        let results = client.execute(shard, vec![ClusterOp::Read(key)]).unwrap();
        assert_eq!(results, vec![OpResult::Value(Some(Value::from_u64(i * 2)))]);
    }
    // Commits propagate through the same cut as bus clients.
    let cut_source = cluster.cut_source();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let cut = cut_source();
        let prefix = client.session_mut().refresh_commit(&cut);
        if prefix >= 100 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "commits must arrive");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(client.session_mut().committed_count(), 100);

    stop.store(true, Ordering::Release);
    for h in handles {
        let _ = h.join();
    }
    cluster.shutdown();
}

#[test]
fn tcp_client_observes_failures_via_world_line() {
    let (cluster, addrs, stop, handles) = tcp_cluster(2);
    let mut client = TcpClient::connect(DprClientSession::new(SessionId(101)), &addrs).unwrap();
    let key = Key::from_u64(1);
    let shard = cluster.owner_of(&key).unwrap();
    client
        .execute(
            shard,
            vec![ClusterOp::Upsert(key.clone(), Value::from_u64(1))],
        )
        .unwrap();

    cluster.inject_failure().unwrap();
    cluster.wait_recovered(Duration::from_secs(10)).unwrap();

    // The first post-failure call is rejected with a world-line mismatch —
    // same protocol error as on the bus, now through JSON frames.
    let err = client.execute(shard, vec![ClusterOp::Read(key.clone())]);
    assert!(
        matches!(err, Err(dpr_core::DprError::WorldLineMismatch { .. })),
        "got {err:?}"
    );
    // Recover the session and continue.
    let wl = cluster.metadata().world_line().unwrap();
    let cut = cluster.metadata().read_cut().unwrap();
    client.session_mut().handle_failure(wl, &cut);
    let results = client.execute(shard, vec![ClusterOp::Read(key)]).unwrap();
    assert!(matches!(results[0], OpResult::Value(_)));

    stop.store(true, Ordering::Release);
    for h in handles {
        let _ = h.join();
    }
    cluster.shutdown();
}

#[test]
fn mixed_bus_and_tcp_clients_share_one_cluster() {
    let (cluster, addrs, stop, handles) = tcp_cluster(2);
    // A bus client writes...
    let mut bus = cluster.open_session().unwrap();
    bus.execute(vec![ClusterOp::Upsert(
        Key::from_u64(7),
        Value::from_u64(77),
    )])
    .unwrap();
    // ...and a TCP client reads it (linearizable single-owner routing).
    let mut tcp = TcpClient::connect(DprClientSession::new(SessionId(102)), &addrs).unwrap();
    let shard = cluster.owner_of(&Key::from_u64(7)).unwrap();
    let results = tcp
        .execute(shard, vec![ClusterOp::Read(Key::from_u64(7))])
        .unwrap();
    assert_eq!(results[0], OpResult::Value(Some(Value::from_u64(77))));

    stop.store(true, Ordering::Release);
    for h in handles {
        let _ = h.join();
    }
    cluster.shutdown();
}
