//! The real network plane: fan-in server, pipelined clients, reconnect
//! dedupe, and wire-level robustness (docs/NETWORK.md).

use dpr_cluster::wire::{
    self, Frame, FrameKind, Hello, ProtoError, ProtoErrorCode, WireRequest, WireResponse,
};
use dpr_cluster::{
    Cluster, ClusterConfig, ClusterOp, NetServer, NetServerConfig, OpResult, PipelinedClient,
    TcpClient,
};
use dpr_core::{DprError, Key, SessionId, ShardId, Token, Value, Version, WorldLine};
use libdpr::{BatchHeader, DprClientSession};
use proptest::prelude::*;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// A cluster with every worker served through one fan-in NetServer.
fn net_cluster(shards: usize, dedupe_window: usize) -> (Cluster, NetServer) {
    let cluster = Cluster::start(ClusterConfig {
        shards,
        checkpoint_interval: Some(Duration::from_millis(20)),
        finder_interval: Duration::from_millis(2),
        dedupe_window,
        ..ClusterConfig::default()
    })
    .unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server = NetServer::start(
        cluster.workers().to_vec(),
        listener,
        NetServerConfig {
            io_threads: 2,
            ..NetServerConfig::default()
        },
    )
    .unwrap();
    (cluster, server)
}

#[test]
fn fan_in_server_routes_shards_over_one_connection() {
    let (cluster, server) = net_cluster(3, 0);
    let addr = server.local_addr();
    let addrs: HashMap<ShardId, _> = cluster
        .workers()
        .iter()
        .map(|w| (w.shard(), addr))
        .collect();
    let mut client = TcpClient::connect(DprClientSession::new(SessionId(500)), &addrs).unwrap();

    for i in 0..60u64 {
        let key = Key::from_u64(i);
        let shard = cluster.owner_of(&key).unwrap();
        let results = client
            .execute(shard, vec![ClusterOp::Upsert(key, Value::from_u64(i))])
            .unwrap();
        assert_eq!(results, vec![OpResult::Done]);
    }
    for i in 0..60u64 {
        let key = Key::from_u64(i);
        let shard = cluster.owner_of(&key).unwrap();
        let results = client.execute(shard, vec![ClusterOp::Read(key)]).unwrap();
        assert_eq!(results, vec![OpResult::Value(Some(Value::from_u64(i)))]);
    }
    // Commit tracking entirely over the wire: no side channel to the
    // metadata store.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.refresh_commit_over_wire() {
            Ok(prefix) if prefix >= 120 => break,
            Ok(_) | Err(DprError::Timeout) => {}
            Err(e) => panic!("cut fetch failed: {e}"),
        }
        assert!(Instant::now() < deadline, "commits must arrive over wire");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(client.session_mut().committed_count(), 120);

    server.shutdown();
    cluster.shutdown();
}

#[test]
fn pipelined_sessions_keep_many_batches_in_flight() {
    let (cluster, server) = net_cluster(2, 0);
    let addr = server.local_addr();
    const SESSIONS: usize = 4;
    const BATCHES: u64 = 40;

    let mut clients: Vec<PipelinedClient> = (0..SESSIONS)
        .map(|i| {
            PipelinedClient::connect(DprClientSession::new(SessionId(600 + i as u64)), addr)
                .unwrap()
        })
        .collect();
    assert_eq!(clients[0].shards().len(), 2, "handshake advertises shards");

    // Issue a full window on every session before reading anything: the
    // server must sustain many batches in flight per connection.
    let mut issued = [0u64; SESSIONS];
    let mut completed = [0u64; SESSIONS];
    let deadline = Instant::now() + Duration::from_secs(30);
    while completed.iter().any(|&c| c < BATCHES) {
        assert!(Instant::now() < deadline, "pipelined run stalled");
        for (i, client) in clients.iter_mut().enumerate() {
            while issued[i] < BATCHES && client.inflight() < 8 {
                let key = Key::from_u64(i as u64 * 1000 + issued[i]);
                let shard = cluster.owner_of(&key).unwrap();
                client
                    .issue(shard, &[ClusterOp::Upsert(key, Value::from_u64(issued[i]))])
                    .unwrap();
                issued[i] += 1;
            }
            for done in client.poll(Duration::from_millis(5)).unwrap() {
                done.result.unwrap();
                completed[i] += 1;
            }
        }
    }
    for (i, client) in clients.iter_mut().enumerate() {
        assert_eq!(completed[i], BATCHES);
        assert_eq!(client.inflight(), 0);
        assert_eq!(client.session_mut().issued(), BATCHES);
    }

    server.shutdown();
    cluster.shutdown();
}

#[test]
fn reconnect_with_epoch_bump_is_exactly_once() {
    // Dedupe window on: the server replays cached replies for batches it
    // already executed, so a retransmit after reconnect cannot double-apply.
    let (cluster, server) = net_cluster(1, 256);
    let addr = server.local_addr();
    let shard = cluster.workers()[0].shard();
    let mut client = PipelinedClient::connect(DprClientSession::new(SessionId(700)), addr).unwrap();

    let key = Key::from_u64(42);
    const INCRS: u64 = 20;
    let mut completed = 0u64;
    for _ in 0..INCRS {
        client
            .issue(shard, &[ClusterOp::Incr(key.clone())])
            .unwrap();
    }
    // Let some execute, then force a reconnect with everything unacked
    // from the client's point of view.
    let deadline = Instant::now() + Duration::from_secs(10);
    while completed < INCRS / 2 && Instant::now() < deadline {
        completed += client.poll(Duration::from_millis(5)).unwrap().len() as u64;
    }
    client.reconnect().unwrap(); // retransmits all inflight batches
    let deadline = Instant::now() + Duration::from_secs(20);
    while completed < INCRS {
        assert!(Instant::now() < deadline, "reconnected run stalled");
        completed += client.poll(Duration::from_millis(5)).unwrap().len() as u64;
        client.retransmit_stalled(Duration::from_secs(2)).unwrap();
    }

    // Every increment applied exactly once despite the retransmissions.
    let read_seq = client.issue(shard, &[ClusterOp::Read(key)]).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let value = loop {
        assert!(Instant::now() < deadline, "final read stalled");
        let done = client.poll(Duration::from_millis(5)).unwrap();
        if let Some(c) = done.into_iter().find(|c| c.seq == read_seq) {
            break c.result.unwrap();
        }
    };
    assert_eq!(value, vec![OpResult::Value(Some(Value::from_u64(INCRS)))]);

    server.shutdown();
    cluster.shutdown();
}

#[test]
fn stale_epoch_connections_are_fenced() {
    let (cluster, server) = net_cluster(1, 0);
    let addr = server.local_addr();
    let session = SessionId(800);

    // Epoch 3 accepted...
    let mut s1 = TcpStream::connect(addr).unwrap();
    let hello = Hello {
        session,
        epoch: 3,
        world_line: WorldLine(1),
    };
    let mut buf = Vec::new();
    hello.to_frame().encode_into(&mut buf);
    s1.write_all(&buf).unwrap();
    let frame = read_one_frame(&mut s1);
    assert_eq!(frame.kind, FrameKind::HelloAck);

    // ...so epoch 2 for the same session is a zombie and must be rejected.
    let mut s2 = TcpStream::connect(addr).unwrap();
    let stale = Hello {
        session,
        epoch: 2,
        world_line: WorldLine(1),
    };
    let mut buf = Vec::new();
    stale.to_frame().encode_into(&mut buf);
    s2.write_all(&buf).unwrap();
    let frame = read_one_frame(&mut s2);
    assert_eq!(frame.kind, FrameKind::Error);
    let err = ProtoError::from_frame(&frame).unwrap();
    assert_eq!(err.code, ProtoErrorCode::StaleEpoch);

    server.shutdown();
    cluster.shutdown();
}

#[test]
fn malformed_frames_are_rejected_and_other_conns_survive() {
    let (cluster, server) = net_cluster(1, 0);
    let addr = server.local_addr();
    let shard = cluster.workers()[0].shard();

    // A healthy client...
    let addrs: HashMap<ShardId, _> = [(shard, addr)].into_iter().collect();
    let mut healthy = TcpClient::connect(DprClientSession::new(SessionId(900)), &addrs).unwrap();

    // ...and a vandal sending garbage magic (long enough to cover a full
    // frame header — shorter garbage just looks like a partial frame).
    let mut vandal = TcpStream::connect(addr).unwrap();
    vandal
        .write_all(b"GET / HTTP/1.1\r\nHost: example.com\r\n\r\n")
        .unwrap();
    let frame = read_one_frame(&mut vandal);
    assert_eq!(frame.kind, FrameKind::Error);
    assert_eq!(
        ProtoError::from_frame(&frame).unwrap().code,
        ProtoErrorCode::BadFrame
    );
    // The server closes the poisoned connection.
    let mut rest = Vec::new();
    vandal.read_to_end(&mut rest).unwrap();

    // Unknown frame kind is equally fatal for that connection.
    let mut vandal = TcpStream::connect(addr).unwrap();
    let mut buf = Vec::new();
    wire::control_frame(FrameKind::CutReq, 1).encode_into(&mut buf);
    buf[5] = 200; // out-of-range kind byte
    vandal.write_all(&buf).unwrap();
    let frame = read_one_frame(&mut vandal);
    assert_eq!(frame.kind, FrameKind::Error);

    // A request before Hello is a handshake violation.
    let mut early = TcpStream::connect(addr).unwrap();
    let req = WireRequest {
        header: BatchHeader {
            session: SessionId(901),
            world_line: WorldLine(1),
            version_lower_bound: Version(0),
            deps: vec![],
            first_serial: 0,
            op_count: 1,
        },
        ops: vec![ClusterOp::Read(Key::from_u64(1))],
    };
    let mut buf = Vec::new();
    req.to_frame(shard, 7).encode_into(&mut buf);
    early.write_all(&buf).unwrap();
    let frame = read_one_frame(&mut early);
    assert_eq!(frame.kind, FrameKind::Error);
    assert_eq!(
        ProtoError::from_frame(&frame).unwrap().code,
        ProtoErrorCode::HandshakeRequired
    );

    // A truncated frame (half a body, then disconnect) must not wedge the
    // server: just drop the socket mid-frame.
    let mut trunc = TcpStream::connect(addr).unwrap();
    let mut buf = Vec::new();
    req.to_frame(shard, 8).encode_into(&mut buf);
    trunc.write_all(&buf[..buf.len() / 2]).unwrap();
    drop(trunc);

    // Through all of it the healthy connection keeps working.
    let results = healthy
        .execute(
            shard,
            vec![ClusterOp::Upsert(Key::from_u64(5), Value::from_u64(55))],
        )
        .unwrap();
    assert_eq!(results, vec![OpResult::Done]);

    server.shutdown();
    cluster.shutdown();
}

#[test]
fn unknown_shard_rejection_keeps_connection_open() {
    let (cluster, server) = net_cluster(1, 0);
    let addr = server.local_addr();
    let shard = cluster.workers()[0].shard();
    let mut client = PipelinedClient::connect(DprClientSession::new(SessionId(910)), addr).unwrap();

    // Route to a shard the server does not host: per the spec this is a
    // recoverable Error frame, not a connection teardown...
    let bogus = ShardId(99);
    client
        .issue(bogus, &[ClusterOp::Read(Key::from_u64(1))])
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let err = loop {
        assert!(Instant::now() < deadline, "rejection never arrived");
        match client.poll(Duration::from_millis(50)) {
            Ok(done) if done.is_empty() => continue,
            Ok(_) => panic!("bogus shard must not complete"),
            Err(e) => break e,
        }
    };
    assert!(matches!(err, DprError::Invalid(_)), "got {err:?}");

    // ...so the same connection still serves real traffic.
    client
        .issue(shard, &[ClusterOp::Read(Key::from_u64(1))])
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline);
        let done = client.poll(Duration::from_millis(10)).unwrap();
        if !done.is_empty() {
            done.into_iter().next().unwrap().result.unwrap();
            break;
        }
    }

    server.shutdown();
    cluster.shutdown();
}

#[test]
fn tcp_client_execute_times_out_against_hung_worker() {
    // End-to-end: a server that acks the handshake but never answers
    // requests. TcpClient::execute must return DprError::Timeout within
    // the configured deadline.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let hold = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        // Read the Hello, send the ack, then go silent.
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        let hello = loop {
            let n = stream.read(&mut chunk).unwrap();
            buf.extend_from_slice(&chunk[..n]);
            if let Some((frame, _)) = wire::decode_frame(&buf).unwrap() {
                break Hello::from_frame(&frame).unwrap();
            }
        };
        let ack = wire::HelloAck {
            epoch: hello.epoch,
            world_line: hello.world_line,
            shards: vec![ShardId(0)],
        };
        let mut out = Vec::new();
        ack.to_frame().encode_into(&mut out);
        stream.write_all(&out).unwrap();
        std::thread::sleep(Duration::from_secs(10));
    });

    let addrs: HashMap<ShardId, _> = [(ShardId(0), addr)].into_iter().collect();
    let mut client = TcpClient::connect(DprClientSession::new(SessionId(930)), &addrs).unwrap();
    client.set_read_timeout(Duration::from_millis(300));
    let start = Instant::now();
    let err = client.execute(ShardId(0), vec![ClusterOp::Read(Key::from_u64(1))]);
    assert!(matches!(err, Err(DprError::Timeout)), "got {err:?}");
    assert!(start.elapsed() < Duration::from_secs(5));
    drop(client);
    drop(hold); // detached sleeper; the test does not wait out its nap
}

// ---------------------------------------------------------------------------
// Frame encode/decode property tests
// ---------------------------------------------------------------------------

fn arb_key() -> impl Strategy<Value = Key> {
    (0u64..1 << 20).prop_map(Key::from_u64)
}

fn arb_op() -> impl Strategy<Value = ClusterOp> {
    prop_oneof![
        arb_key().prop_map(ClusterOp::Read),
        (arb_key(), 0u64..u64::MAX).prop_map(|(k, v)| ClusterOp::Upsert(k, Value::from_u64(v))),
        arb_key().prop_map(ClusterOp::Incr),
        arb_key().prop_map(ClusterOp::Delete),
    ]
}

fn arb_header() -> impl Strategy<Value = BatchHeader> {
    // The vendored proptest stub supports tuples up to arity 4, so nest.
    (
        (0u64..1 << 30, 1u64..1 << 16, 0u64..1 << 40),
        (
            prop::collection::vec((0u32..64, 0u64..1 << 40), 0..6),
            0u64..1 << 40,
            0u32..1 << 10,
        ),
    )
        .prop_map(|((session, wl, vlb), (deps, first, count))| BatchHeader {
            session: SessionId(session),
            world_line: WorldLine(wl),
            version_lower_bound: Version(vlb),
            deps: deps
                .into_iter()
                .map(|(s, v)| Token::new(ShardId(s), Version(v)))
                .collect(),
            first_serial: first,
            op_count: count,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any request round-trips bit-exactly through the wire codec, and the
    /// encoding is streamable: decoding a concatenation yields the frames
    /// in order, and every strict prefix of a frame asks for more bytes.
    #[test]
    fn request_frames_round_trip(
        header in arb_header(),
        ops in prop::collection::vec(arb_op(), 0..12),
        shard in 0u32..128,
        seq in 0u64..u64::MAX,
    ) {
        let req = WireRequest { header, ops };
        let frame = req.to_frame(ShardId(shard), seq);
        let mut buf = Vec::new();
        frame.encode_into(&mut buf);
        // Prefixes never decode, never error.
        for cut in [0, 1, wire::FRAME_HEADER_LEN - 1, buf.len().saturating_sub(1)] {
            let cut = cut.min(buf.len() - 1);
            prop_assert!(wire::decode_frame(&buf[..cut]).unwrap().is_none());
        }
        // Two frames back to back decode in order.
        let mut twice = buf.clone();
        twice.extend_from_slice(&buf);
        let (first, used) = wire::decode_frame(&twice).unwrap().unwrap();
        let (second, used2) = wire::decode_frame(&twice[used..]).unwrap().unwrap();
        prop_assert_eq!(used, used2);
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(first.seq, seq);
        prop_assert_eq!(first.shard, shard);
        let decoded = WireRequest::from_frame(&first).unwrap();
        prop_assert_eq!(decoded, req);
    }

    /// Response outcomes — results of every shape and every error variant —
    /// round-trip bit-exactly.
    #[test]
    fn response_frames_round_trip(
        shard in 0u32..128,
        wl in 1u64..1 << 16,
        version in 0u64..1 << 40,
        first in 0u64..1 << 40,
        results in prop::collection::vec(prop_oneof![
            Just(OpResult::Done),
            Just(OpResult::Value(None)),
            (0u64..u64::MAX).prop_map(|v| OpResult::Value(Some(Value::from_u64(v)))),
        ], 0..12),
        err_pick in 0usize..5,
    ) {
        let reply = libdpr::BatchReply {
            shard: ShardId(shard),
            world_line: WorldLine(wl),
            version: Version(version),
            first_serial: first,
            op_count: results.len() as u32,
        };
        let ok = WireResponse { outcome: Ok((reply, results)) };
        let frame = ok.to_frame(shard, 3);
        prop_assert_eq!(WireResponse::from_frame(&frame).unwrap(), ok);

        let errs = [
            DprError::WorldLineMismatch { requested: WorldLine(wl), current: WorldLine(wl + 1) },
            DprError::NotOwner { shard: ShardId(shard) },
            DprError::Recovering,
            DprError::Timeout,
            DprError::Invalid("bad".into()),
        ];
        let e = errs[err_pick].clone();
        let resp = WireResponse { outcome: Err(e) };
        let frame = resp.to_frame(shard, 4);
        prop_assert_eq!(WireResponse::from_frame(&frame).unwrap(), resp);
    }

    /// Corrupting any single header byte of a valid frame never panics:
    /// the decoder either rejects it, asks for more bytes, or returns a
    /// (different) well-formed frame — importantly it never reads out of
    /// bounds or wraps lengths.
    #[test]
    fn corrupted_headers_never_panic(
        byte in 0usize..wire::FRAME_HEADER_LEN,
        val in 0u32..256,
    ) {
        let req = WireRequest {
            header: BatchHeader {
                session: SessionId(1),
                world_line: WorldLine(1),
                version_lower_bound: Version(0),
                deps: vec![],
                first_serial: 0,
                op_count: 1,
            },
            ops: vec![ClusterOp::Read(Key::from_u64(9))],
        };
        let mut buf = Vec::new();
        req.to_frame(ShardId(0), 1).encode_into(&mut buf);
        buf[byte] = val as u8;
        let _ = wire::decode_frame(&buf); // must not panic
    }
}

/// Read exactly one frame from a blocking socket (test helper).
fn read_one_frame(stream: &mut TcpStream) -> Frame {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some((frame, used)) = wire::decode_frame(&buf).unwrap() {
            assert!(used <= buf.len());
            return frame;
        }
        let n = stream.read(&mut chunk).expect("peer closed before frame");
        assert!(n > 0, "peer closed before frame");
        buf.extend_from_slice(&chunk[..n]);
    }
}
