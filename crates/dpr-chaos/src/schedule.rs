//! Deterministic fault schedules.
//!
//! A schedule is generated *upfront* as a pure function of the seed: the
//! planner simulates membership logically (worker count, churn depth) so
//! every planned target index is valid when the driver executes it, and two
//! runs with the same seed execute — and log — the identical fault
//! sequence regardless of load timing.

use crate::rng::ChaosRng;
use std::fmt;

/// One injectable fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Crash the worker at `idx` and run cluster-wide recovery (§4.1).
    CrashWorker {
        /// Worker index to blame.
        idx: usize,
    },
    /// Partition the client→worker link of the worker at `idx` for `ms`
    /// milliseconds; parked traffic is released in order on heal.
    PartitionLink {
        /// Worker index.
        idx: usize,
        /// Partition duration in milliseconds.
        ms: u64,
    },
    /// Add `extra_ms` of one-way delay to the worker's link for `ms`.
    SlowLink {
        /// Worker index.
        idx: usize,
        /// Added one-way delay in milliseconds.
        extra_ms: u64,
        /// Fault duration in milliseconds.
        ms: u64,
    },
    /// Drop `drop_pct`% of messages to the worker's link for `ms`.
    LossyLink {
        /// Worker index.
        idx: usize,
        /// Drop probability in percent.
        drop_pct: u32,
        /// Fault duration in milliseconds.
        ms: u64,
    },
    /// Park the worker's CPR checkpoint completion for `ms`, growing the
    /// cluster cut lag `Vmax − Vsafe` until the stall expires.
    StallCheckpoint {
        /// Worker index.
        idx: usize,
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// Add a worker and rebalance partitions onto it (§5.3).
    AddWorker,
    /// Remove the most recently added worker, migrating its keys away
    /// first (§5.3). Planned only when churn depth is positive, so the
    /// initial workers are never removed.
    RemoveWorker,
    /// Migrate the virtual partition owning `key` to the next worker.
    MigratePartition {
        /// Key whose partition moves.
        key: u64,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::CrashWorker { idx } => write!(f, "crash worker {idx}"),
            FaultKind::PartitionLink { idx, ms } => {
                write!(f, "partition worker {idx} for {ms}ms")
            }
            FaultKind::SlowLink { idx, extra_ms, ms } => {
                write!(f, "slow link to worker {idx} (+{extra_ms}ms) for {ms}ms")
            }
            FaultKind::LossyLink { idx, drop_pct, ms } => {
                write!(
                    f,
                    "lossy link to worker {idx} ({drop_pct}% drop) for {ms}ms"
                )
            }
            FaultKind::StallCheckpoint { idx, ms } => {
                write!(f, "stall checkpoints on worker {idx} for {ms}ms")
            }
            FaultKind::AddWorker => write!(f, "add worker"),
            FaultKind::RemoveWorker => write!(f, "remove last worker"),
            FaultKind::MigratePartition { key } => {
                write!(f, "migrate partition of key {key}")
            }
        }
    }
}

/// Generate a schedule of `events` faults from a single seed.
///
/// The first four slots force coverage — a crash, a partition, a worker
/// addition (when allowed), and a migration — so even short smoke runs
/// exercise recovery, the transport fault path, and churn. The rest are
/// weighted-random. `initial_workers` is the starting shard count and
/// `max_extra` bounds churn depth (workers added above the initial set).
#[must_use]
pub fn plan(seed: u64, events: usize, initial_workers: usize, max_extra: usize) -> Vec<FaultKind> {
    assert!(initial_workers > 0, "need at least one worker");
    let mut rng = ChaosRng::new(seed);
    let mut workers = initial_workers;
    let mut extra = 0usize;
    let mut out = Vec::with_capacity(events);
    for slot in 0..events {
        let kind = match slot {
            0 => FaultKind::CrashWorker {
                idx: rng.below(workers as u64) as usize,
            },
            1 => FaultKind::PartitionLink {
                idx: rng.below(workers as u64) as usize,
                ms: rng.range(150, 450),
            },
            2 if max_extra > 0 => FaultKind::AddWorker,
            3 => FaultKind::MigratePartition {
                key: rng.next_u64() >> 32,
            },
            _ => loop {
                // Weighted table out of 100.
                let roll = rng.below(100);
                let kind = match roll {
                    0..=19 => FaultKind::CrashWorker {
                        idx: rng.below(workers as u64) as usize,
                    },
                    20..=34 => FaultKind::PartitionLink {
                        idx: rng.below(workers as u64) as usize,
                        ms: rng.range(150, 450),
                    },
                    35..=44 => FaultKind::SlowLink {
                        idx: rng.below(workers as u64) as usize,
                        extra_ms: rng.range(1, 6),
                        ms: rng.range(150, 400),
                    },
                    45..=59 => FaultKind::LossyLink {
                        idx: rng.below(workers as u64) as usize,
                        drop_pct: rng.range(10, 50) as u32,
                        ms: rng.range(150, 400),
                    },
                    60..=69 => FaultKind::StallCheckpoint {
                        idx: rng.below(workers as u64) as usize,
                        ms: rng.range(100, 400),
                    },
                    70..=79 => FaultKind::MigratePartition {
                        key: rng.next_u64() >> 32,
                    },
                    80..=89 => FaultKind::AddWorker,
                    _ => FaultKind::RemoveWorker,
                };
                // Reject membership moves the simulated state disallows;
                // re-roll keeps the stream seed-determined.
                match kind {
                    FaultKind::AddWorker if extra >= max_extra => continue,
                    FaultKind::RemoveWorker if extra == 0 => continue,
                    k => break k,
                }
            },
        };
        match kind {
            FaultKind::AddWorker => {
                workers += 1;
                extra += 1;
            }
            FaultKind::RemoveWorker => {
                workers -= 1;
                extra -= 1;
            }
            _ => {}
        }
        out.push(kind);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic() {
        let a = plan(42, 24, 3, 2);
        let b = plan(42, 24, 3, 2);
        assert_eq!(a, b);
        let c = plan(43, 24, 3, 2);
        assert_ne!(a, c, "different seeds should differ at 24 events");
    }

    #[test]
    fn plan_targets_stay_valid_under_churn() {
        for seed in 0..50 {
            let mut workers = 3usize;
            for kind in plan(seed, 40, 3, 2) {
                match kind {
                    FaultKind::AddWorker => workers += 1,
                    FaultKind::RemoveWorker => {
                        assert!(workers > 3, "never removes an initial worker");
                        workers -= 1;
                    }
                    FaultKind::CrashWorker { idx }
                    | FaultKind::PartitionLink { idx, .. }
                    | FaultKind::SlowLink { idx, .. }
                    | FaultKind::LossyLink { idx, .. }
                    | FaultKind::StallCheckpoint { idx, .. } => {
                        assert!(idx < workers, "target {idx} out of {workers}");
                    }
                    FaultKind::MigratePartition { .. } => {}
                }
            }
            assert!((3..=5).contains(&workers));
        }
    }

    #[test]
    fn forced_prefix_covers_crash_partition_churn() {
        let p = plan(7, 8, 3, 2);
        assert!(matches!(p[0], FaultKind::CrashWorker { .. }));
        assert!(matches!(p[1], FaultKind::PartitionLink { .. }));
        assert!(matches!(p[2], FaultKind::AddWorker));
        assert!(matches!(p[3], FaultKind::MigratePartition { .. }));
    }
}
