//! The chaos driver: a live cluster under sustained YCSB load while a
//! seed-determined fault schedule injects crashes, link faults, checkpoint
//! stalls and membership churn — with the [`InvariantChecker`] watching
//! every tick and an exactly-once ledger auditing session replay.

use crate::checker::InvariantChecker;
use crate::schedule::{self, FaultKind};
use dpr_cluster::{Cluster, ClusterConfig, ClusterKind, ClusterOp, LinkFault, SessionStats};
use dpr_core::{DprFinderMode, Key, Result};
use dpr_metadata::VirtualPartition;
use dpr_ycsb::{KeyDistribution, WorkloadGen, WorkloadOp, WorkloadSpec};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Chaos run parameters.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed determining the entire fault schedule (and transport drops).
    pub seed: u64,
    /// Load duration; faults are spread evenly across it.
    pub duration: Duration,
    /// Initial worker count.
    pub shards: usize,
    /// YCSB client threads (plus one ledger session).
    pub clients: usize,
    /// Number of fault events to inject.
    pub events: usize,
    /// YCSB keyspace size.
    pub keys: u64,
    /// Maximum workers added above the initial set (churn depth).
    pub max_extra_workers: usize,
    /// Tolerated per-shard cut lag `Vmax − Vsafe`, in versions.
    pub lag_bound: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xD15EA5E,
            duration: Duration::from_secs(4),
            shards: 3,
            clients: 2,
            events: 8,
            keys: 2048,
            max_extra_workers: 1,
            lag_bound: 256,
        }
    }
}

/// Per-kind fault counts actually executed.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultCounts {
    /// Worker crashes (cluster-wide recoveries).
    pub crashes: u64,
    /// Link partitions.
    pub partitions: u64,
    /// Slow-link windows.
    pub slow_links: u64,
    /// Lossy-link windows.
    pub lossy_links: u64,
    /// Checkpoint stalls.
    pub stalls: u64,
    /// Workers added.
    pub workers_added: u64,
    /// Workers removed.
    pub workers_removed: u64,
    /// Partition migrations.
    pub migrations: u64,
    /// Keys moved by migrations.
    pub keys_migrated: u64,
}

/// Everything a chaos run measured.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The configuration the run used.
    pub config: ChaosConfig,
    /// Executed fault schedule, in order (seed-determined).
    pub fault_log: Vec<String>,
    /// Executed fault counts.
    pub faults: FaultCounts,
    /// Wall-clock per recovery, inject → all shards rolled back.
    pub recovery_ms: Vec<u64>,
    /// Milliseconds of 100ms buckets in which zero ops completed
    /// cluster-wide (the lost-availability SLO).
    pub lost_availability_ms: u64,
    /// Total run wall-clock.
    pub elapsed_ms: u64,
    /// Maximum per-shard cut lag observed (versions).
    pub max_cut_lag: u64,
    /// Ops completed across all sessions.
    pub completed: u64,
    /// Ops known committed across all sessions.
    pub committed: u64,
    /// Ops aborted by failures across all sessions.
    pub aborted: u64,
    /// Messages dropped by injected lossy links.
    pub net_dropped: u64,
    /// Invariant-checker tick passes.
    pub checks: u64,
    /// Total invariant violations (must be zero for a healthy protocol).
    pub violation_count: u64,
    /// Stored violation descriptions (capped).
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// Percentage of run time with cluster-wide availability.
    #[must_use]
    pub fn availability_pct(&self) -> f64 {
        if self.elapsed_ms == 0 {
            return 100.0;
        }
        100.0 * (1.0 - self.lost_availability_ms as f64 / self.elapsed_ms as f64)
    }

    /// Render the report as a `BENCH_chaos.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut rec_sorted = self.recovery_ms.clone();
        rec_sorted.sort_unstable();
        let p50 = rec_sorted.get(rec_sorted.len() / 2).copied().unwrap_or(0);
        let max = rec_sorted.last().copied().unwrap_or(0);
        let mut s = String::with_capacity(2048);
        s.push_str("{\n  \"bench\": \"chaos\",\n");
        s.push_str(&format!(
            "  \"config\": {{\"seed\": {}, \"duration_ms\": {}, \"shards\": {}, \
             \"clients\": {}, \"events\": {}, \"keys\": {}, \"max_extra_workers\": {}, \
             \"lag_bound\": {}}},\n",
            self.config.seed,
            self.config.duration.as_millis(),
            self.config.shards,
            self.config.clients,
            self.config.events,
            self.config.keys,
            self.config.max_extra_workers,
            self.config.lag_bound,
        ));
        s.push_str("  \"fault_log\": [\n");
        for (i, f) in self.fault_log.iter().enumerate() {
            let comma = if i + 1 == self.fault_log.len() {
                ""
            } else {
                ","
            };
            s.push_str(&format!("    \"{f}\"{comma}\n"));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"faults\": {{\"crashes\": {}, \"partitions\": {}, \"slow_links\": {}, \
             \"lossy_links\": {}, \"checkpoint_stalls\": {}, \"workers_added\": {}, \
             \"workers_removed\": {}, \"migrations\": {}, \"keys_migrated\": {}}},\n",
            self.faults.crashes,
            self.faults.partitions,
            self.faults.slow_links,
            self.faults.lossy_links,
            self.faults.stalls,
            self.faults.workers_added,
            self.faults.workers_removed,
            self.faults.migrations,
            self.faults.keys_migrated,
        ));
        s.push_str(&format!(
            "  \"slo\": {{\"recoveries\": {}, \"recovery_ms_p50\": {p50}, \
             \"recovery_ms_max\": {max}, \"lost_availability_ms\": {}, \
             \"availability_pct\": {:.2}, \"max_cut_lag_versions\": {}}},\n",
            self.recovery_ms.len(),
            self.lost_availability_ms,
            self.availability_pct(),
            self.max_cut_lag,
        ));
        s.push_str(&format!(
            "  \"ops\": {{\"completed\": {}, \"committed\": {}, \"aborted\": {}, \
             \"net_messages_dropped\": {}}},\n",
            self.completed, self.committed, self.aborted, self.net_dropped,
        ));
        s.push_str(&format!(
            "  \"invariants\": {{\"checks\": {}, \"violations\": {}, \"catalog\": \
             [\"cut_monotonicity\", \"downward_closure\", \"prefix_recoverability\", \
             \"recovery_completeness\", \"bounded_cut_lag\", \"exactly_once_replay\"], \
             \"violation_details\": [",
            self.checks, self.violation_count,
        ));
        for (i, v) in self.violations.iter().take(20).enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\"", v.replace('"', "'")));
        }
        s.push_str("]},\n");
        s.push_str(&format!("  \"elapsed_ms\": {}\n}}\n", self.elapsed_ms));
        s
    }
}

/// Serializes chaos runs within a process: the telemetry span ring and the
/// `libdpr::audit` sink are process-global.
static RUN_LOCK: Mutex<()> = Mutex::new(());

/// Run one chaos campaign and return its report. Violations do not abort
/// the run — they accumulate in the report for the caller to assert on.
pub fn run(config: &ChaosConfig) -> Result<ChaosReport> {
    let _guard = RUN_LOCK.lock();
    dpr_telemetry::set_enabled(true);
    let checker = Arc::new(InvariantChecker::new(config.lag_bound));
    libdpr::audit::install(checker.clone());
    let result = run_inner(config, &checker);
    libdpr::audit::uninstall();
    result
}

const PARTITIONS: u32 = 32;

fn run_inner(config: &ChaosConfig, checker: &Arc<InvariantChecker>) -> Result<ChaosReport> {
    let cluster = Cluster::start(ClusterConfig {
        kind: ClusterKind::DFaster,
        shards: config.shards,
        partitions: PARTITIONS,
        checkpoint_interval: Some(Duration::from_millis(25)),
        finder_mode: DprFinderMode::Hybrid,
        finder_interval: Duration::from_millis(5),
        network_latency: Duration::from_micros(100),
        dedupe_window: 512,
        ..ClusterConfig::default()
    })?;
    cluster.network().set_fault_seed(config.seed);
    let meta = cluster.metadata().clone();
    let cluster = Arc::new(RwLock::new(cluster));
    let stop = Arc::new(AtomicBool::new(false));
    let completed_ctr = Arc::new(AtomicU64::new(0));

    // Checker thread: one invariant pass every few milliseconds.
    let checker_thread = {
        let checker = checker.clone();
        let meta = meta.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                checker.tick(&meta);
                std::thread::sleep(Duration::from_millis(4));
            }
            checker.tick(&meta);
        })
    };

    // Availability monitor: 100ms buckets with zero completed ops count as
    // lost availability.
    let avail_thread = {
        let completed = completed_ctr.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut lost_ms = 0u64;
            let mut last = completed.load(Ordering::Relaxed);
            while !stop.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(100));
                let now = completed.load(Ordering::Relaxed);
                if now == last {
                    lost_ms += 100;
                }
                last = now;
            }
            lost_ms
        })
    };

    // YCSB load threads.
    let mut load_threads = Vec::new();
    for c in 0..config.clients {
        let session = cluster.read().open_session()?;
        let stop = stop.clone();
        let completed = completed_ctr.clone();
        let keys = config.keys;
        let seed = config.seed ^ (c as u64 + 1).wrapping_mul(0x5DEE_CE66);
        load_threads.push(std::thread::spawn(move || {
            run_load(session, stop, completed, keys, seed)
        }));
    }

    // Exactly-once ledger session.
    let ledger_thread = {
        let session = cluster.read().open_session()?;
        let checker = checker.clone();
        let stop = stop.clone();
        std::thread::spawn(move || crate::ledger::run(session, checker, stop))
    };

    // Fault loop (main thread).
    let plan = schedule::plan(
        config.seed,
        config.events,
        config.shards,
        config.max_extra_workers,
    );
    let gap = config.duration / (config.events as u32 + 1);
    let started = Instant::now();
    let mut fault_log = Vec::with_capacity(plan.len());
    let mut counts = FaultCounts::default();
    let mut recovery_ms = Vec::new();
    for kind in &plan {
        std::thread::sleep(gap);
        fault_log.push(kind.to_string());
        execute_fault(&cluster, checker, kind, &mut counts, &mut recovery_ms);
    }
    if started.elapsed() < config.duration {
        std::thread::sleep(config.duration - started.elapsed());
    }

    // Heal everything, stop load, gather.
    {
        let c = cluster.read();
        c.network().clear_all_link_faults();
        for w in c.workers() {
            w.store().clear_commit_stall();
        }
    }
    // Let retransmissions and commits settle before the final checks.
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Release);
    let mut completed = 0u64;
    let mut committed = 0u64;
    let mut aborted = 0u64;
    for t in load_threads {
        if let Ok(stats) = t.join() {
            completed += stats.completed;
            committed += stats.committed;
            aborted += stats.aborted;
        }
    }
    let _ = ledger_thread.join();
    let _ = checker_thread.join();
    let lost_availability_ms = avail_thread.join().unwrap_or(0);
    let net_dropped = cluster.read().network().dropped_count();
    let elapsed_ms = started.elapsed().as_millis() as u64;
    cluster.read().shutdown();

    Ok(ChaosReport {
        config: config.clone(),
        fault_log,
        faults: counts,
        recovery_ms,
        lost_availability_ms,
        elapsed_ms,
        max_cut_lag: checker.max_lag(),
        completed,
        committed,
        aborted,
        net_dropped,
        checks: checker.checks(),
        violation_count: checker.violation_count(),
        violations: checker.violations(),
    })
}

/// One YCSB client: windowed issue/poll with stall retransmission and
/// failure recovery, mirroring the Fig. 16 methodology.
fn run_load(
    mut session: dpr_cluster::SessionHandle,
    stop: Arc<AtomicBool>,
    completed: Arc<AtomicU64>,
    keys: u64,
    seed: u64,
) -> SessionStats {
    let spec = WorkloadSpec::ycsb_a(keys, KeyDistribution::Zipfian { theta: 0.99 });
    let mut gen = WorkloadGen::new(spec, seed);
    let mut iters = 0u64;
    while !stop.load(Ordering::Acquire) {
        while session.inflight_ops() < 64 {
            let ops: Vec<ClusterOp> = gen
                .next_batch(8)
                .into_iter()
                .map(|op| match op {
                    WorkloadOp::Read(k) => ClusterOp::Read(k),
                    WorkloadOp::Update(k, v) => ClusterOp::Upsert(k, v),
                    WorkloadOp::Rmw(k) => ClusterOp::Incr(k),
                })
                .collect();
            if session.issue(ops).is_err() {
                break;
            }
        }
        match session.poll(true, Duration::from_millis(10)) {
            Ok(n) => {
                completed.fetch_add(n, Ordering::Relaxed);
            }
            Err(dpr_core::DprError::WorldLineMismatch { .. }) => {
                while session.recover(Duration::from_secs(15)).is_err() {
                    if stop.load(Ordering::Acquire) {
                        return session.stats();
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            Err(_) => {}
        }
        session.take_results().clear();
        let _ = session.resend_stalled(Duration::from_millis(250));
        iters += 1;
        if iters.is_multiple_of(32) {
            // World-line-checked so an unnoticed recovery cannot inflate
            // the committed prefix with aliased post-rollback versions.
            let _ = session.refresh_commit_safe();
        }
    }
    if let Ok(n) = session.poll(false, Duration::ZERO) {
        completed.fetch_add(n, Ordering::Relaxed);
    }
    let _ = session.refresh_commit_safe();
    session.stats()
}

fn execute_fault(
    cluster: &Arc<RwLock<Cluster>>,
    checker: &Arc<InvariantChecker>,
    kind: &FaultKind,
    counts: &mut FaultCounts,
    recovery_ms: &mut Vec<u64>,
) {
    match *kind {
        FaultKind::CrashWorker { idx } => {
            counts.crashes += 1;
            // Rollback waits for a quiescent checkpoint machine and for
            // worker liveness, so lift stalls and link faults first.
            let c = cluster.read();
            for w in c.workers() {
                w.store().clear_commit_stall();
            }
            c.network().clear_all_link_faults();
            checker.exempt_lag(Duration::from_secs(5));
            let idx = idx.min(c.workers().len() - 1);
            let t = Instant::now();
            if let Err(e) = c.inject_failure_at(idx) {
                checker.report_violation(format!("crash injection failed: {e}"));
                return;
            }
            match c.wait_recovered(Duration::from_secs(15)) {
                Ok(()) => recovery_ms.push(t.elapsed().as_millis() as u64),
                Err(e) => checker.report_violation(format!(
                    "recovery after crashing worker {idx} did not complete: {e}"
                )),
            }
        }
        FaultKind::PartitionLink { idx, ms } => {
            counts.partitions += 1;
            let (net, ep) = {
                let c = cluster.read();
                let idx = idx.min(c.workers().len() - 1);
                (c.network().clone(), c.worker_endpoint(idx))
            };
            if let Some(ep) = ep {
                net.set_link_fault(
                    ep,
                    LinkFault {
                        partitioned: true,
                        ..LinkFault::default()
                    },
                );
                std::thread::sleep(Duration::from_millis(ms));
                net.clear_link_fault(ep);
            }
        }
        FaultKind::SlowLink { idx, extra_ms, ms } => {
            counts.slow_links += 1;
            let (net, ep) = {
                let c = cluster.read();
                let idx = idx.min(c.workers().len() - 1);
                (c.network().clone(), c.worker_endpoint(idx))
            };
            if let Some(ep) = ep {
                net.set_link_fault(
                    ep,
                    LinkFault {
                        extra_delay: Duration::from_millis(extra_ms),
                        ..LinkFault::default()
                    },
                );
                std::thread::sleep(Duration::from_millis(ms));
                net.clear_link_fault(ep);
            }
        }
        FaultKind::LossyLink { idx, drop_pct, ms } => {
            counts.lossy_links += 1;
            let (net, ep) = {
                let c = cluster.read();
                let idx = idx.min(c.workers().len() - 1);
                (c.network().clone(), c.worker_endpoint(idx))
            };
            if let Some(ep) = ep {
                net.set_link_fault(
                    ep,
                    LinkFault {
                        drop_rate: f64::from(drop_pct) / 100.0,
                        ..LinkFault::default()
                    },
                );
                std::thread::sleep(Duration::from_millis(ms));
                net.clear_link_fault(ep);
            }
        }
        FaultKind::StallCheckpoint { idx, ms } => {
            counts.stalls += 1;
            checker.exempt_lag(Duration::from_millis(ms) + Duration::from_secs(5));
            let worker = {
                let c = cluster.read();
                c.workers()[idx.min(c.workers().len() - 1)].clone()
            };
            worker
                .store()
                .inject_commit_stall(Duration::from_millis(ms));
            std::thread::sleep(Duration::from_millis(ms));
            worker.store().clear_commit_stall();
        }
        FaultKind::AddWorker => {
            checker.exempt_lag(Duration::from_secs(5));
            match cluster.write().add_worker() {
                Ok(_) => counts.workers_added += 1,
                Err(e) => checker.report_violation(format!("add_worker failed: {e}")),
            }
        }
        FaultKind::RemoveWorker => {
            checker.exempt_lag(Duration::from_secs(5));
            let mut c = cluster.write();
            c.network().clear_all_link_faults();
            let idx = c.workers().len() - 1;
            let shard = c.workers()[idx].shard();
            match c.remove_worker(idx) {
                Ok(()) => {
                    counts.workers_removed += 1;
                    checker.note_shard_removed(shard);
                }
                Err(e) => checker.report_violation(format!("remove_worker failed: {e}")),
            }
        }
        FaultKind::MigratePartition { key } => {
            counts.migrations += 1;
            let c = cluster.read();
            let key = Key::from_u64(key);
            let vp = VirtualPartition((key.hash64() % u64::from(PARTITIONS)) as u32);
            let moved = c.owner_of(&key).and_then(|owner| {
                let from = c
                    .workers()
                    .iter()
                    .position(|w| w.shard() == owner)
                    .ok_or_else(|| dpr_core::DprError::Invalid("owner not found".into()))?;
                let to = (from + 1) % c.workers().len();
                c.migrate_partition(vp, from, to)
            });
            match moved {
                Ok(n) => counts.keys_migrated += n as u64,
                Err(e) => checker.report_violation(format!("migrate_partition failed: {e}")),
            }
        }
    }
}
