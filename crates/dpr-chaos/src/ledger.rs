//! Exactly-once ledger: end-to-end session-replay checking under faults.
//!
//! A dedicated session issues `Incr` operations against a small set of
//! counter keys placed far outside the YCSB keyspace, remembering which
//! serial touched which key. After every recovery it uses the session's
//! surviving prefix to bound what each counter is allowed to read:
//!
//! * **lower bound** — `baseline + incrs with serial < survived`: the
//!   committed prefix must survive rollback (prefix recoverability, §3);
//! * **upper bound** — `baseline + all incrs issued this era`: with
//!   duplicate suppression on, stall-triggered retransmission over lossy
//!   links must never double-apply an increment (exactly-once, §5.2).
//!
//! A counter below the lower bound means a committed effect was lost; one
//! above the upper bound means a duplicate was applied. The bounds are
//! deliberately conservative about the gap (completed-but-uncommitted ops
//! may or may not survive), so they hold under arbitrary fault timing.

use crate::checker::InvariantChecker;
use dpr_cluster::{ClusterOp, OpResult, SessionHandle};
use dpr_core::{DprError, Key};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Ledger keys start here — far above any YCSB key.
const LEDGER_KEY_BASE: u64 = 1 << 40;
/// Number of ledger counters.
const LEDGER_KEYS: usize = 8;

/// Drive the ledger session until `stop`; violations go to `checker`.
pub(crate) fn run(
    mut session: SessionHandle,
    checker: Arc<InvariantChecker>,
    stop: Arc<AtomicBool>,
) {
    let keys: Vec<Key> = (0..LEDGER_KEYS as u64)
        .map(|i| Key::from_u64(LEDGER_KEY_BASE + i * 7919))
        .collect();
    let Some(mut baseline) = read_counters(&mut session, &keys, &stop) else {
        checker.report_violation("ledger: could not read initial counters");
        return;
    };
    // (serial, key index) for every increment issued this era.
    let mut issued: Vec<(u64, usize)> = Vec::new();
    let mut next_key = 0usize;
    let mut iters = 0u64;
    while !stop.load(Ordering::Acquire) {
        if session.inflight_ops() < 16 {
            let idx = next_key % keys.len();
            next_key += 1;
            match session.issue(vec![ClusterOp::Incr(keys[idx].clone())]) {
                Ok(serials) => issued.push((serials[0], idx)),
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        match session.poll(true, Duration::from_millis(5)) {
            Ok(_) => {}
            Err(DprError::WorldLineMismatch { .. }) => {
                settle_era(
                    &mut session,
                    &keys,
                    &mut baseline,
                    &mut issued,
                    &checker,
                    &stop,
                );
            }
            Err(_) => {}
        }
        let _ = session.resend_stalled(Duration::from_millis(250));
        iters += 1;
        if iters.is_multiple_of(16) {
            // World-line-checked: a cut read across an unnoticed recovery
            // must not inflate the committed prefix (the next poll
            // surfaces the mismatch and settles the era).
            let _ = session.refresh_commit_safe();
        }
    }
}

/// Recovery hit this session: recover, read the counters, and assert the
/// exactly-once bounds for the era that just ended.
fn settle_era(
    session: &mut SessionHandle,
    keys: &[Key],
    baseline: &mut [u64],
    issued: &mut Vec<(u64, usize)>,
    checker: &InvariantChecker,
    stop: &AtomicBool,
) {
    let survived = loop {
        match session.recover(Duration::from_secs(15)) {
            Ok(s) => break s,
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    };
    let Some(counters) = read_counters(session, keys, stop) else {
        checker.report_violation("ledger: could not read counters after recovery");
        return;
    };
    for (idx, &counter) in counters.iter().enumerate() {
        let lower: u64 = issued
            .iter()
            .filter(|(s, k)| *k == idx && *s < survived)
            .count() as u64;
        let upper: u64 = issued.iter().filter(|(_, k)| *k == idx).count() as u64;
        if counter < baseline[idx] + lower {
            checker.report_violation(format!(
                "exactly-once violated: ledger key {idx} read {counter}, but \
                 {} committed increments must survive recovery (baseline {})",
                lower, baseline[idx]
            ));
        }
        if counter > baseline[idx] + upper {
            checker.report_violation(format!(
                "exactly-once violated: ledger key {idx} read {counter} > \
                 baseline {} + {upper} issued — an increment was duplicated",
                baseline[idx]
            ));
        }
    }
    baseline.copy_from_slice(&counters);
    issued.clear();
}

/// Read every ledger counter, retrying across transient failures and
/// recoveries. `None` only if the cluster stays unreadable.
fn read_counters(session: &mut SessionHandle, keys: &[Key], stop: &AtomicBool) -> Option<Vec<u64>> {
    for _ in 0..200 {
        let reads: Vec<ClusterOp> = keys.iter().map(|k| ClusterOp::Read(k.clone())).collect();
        match session.execute(reads) {
            Ok(results) => {
                return Some(
                    results
                        .into_iter()
                        .map(|r| match r {
                            OpResult::Value(Some(v)) => v.as_u64().unwrap_or(0),
                            _ => 0,
                        })
                        .collect(),
                );
            }
            Err(DprError::WorldLineMismatch { .. }) => {
                let _ = session.recover(Duration::from_secs(15));
            }
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return None;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    None
}
