//! # dpr-chaos
//!
//! Chaos harness and online invariant checker for the DPR cluster.
//!
//! The harness drives a live [`dpr_cluster::Cluster`] under sustained YCSB
//! load while a deterministic, seed-derived fault schedule
//! ([`schedule::plan`]) injects worker crashes, partitioned / slow / lossy
//! network links, stalled CPR checkpoints, and live membership churn with
//! key migration. Throughout the run an [`checker::InvariantChecker`]
//! continuously asserts the paper's correctness properties — prefix
//! recoverability, cut monotonicity, downward closure, bounded cut lag,
//! recovery completeness, and exactly-once session replay — from the
//! [`libdpr::audit`] tap, the [`dpr_telemetry`] span stream, and the
//! metadata store.
//!
//! The `chaos` binary in `dpr-bench` wraps [`driver::run`] and emits
//! `BENCH_chaos.json`; `docs/PROTOCOL.md` §"Chaos harness" maps each
//! checked invariant to its assertion site.

#![warn(missing_docs)]

pub mod checker;
pub mod driver;
mod ledger;
pub mod rng;
pub mod schedule;

pub use checker::InvariantChecker;
pub use driver::{run, ChaosConfig, ChaosReport, FaultCounts};
pub use schedule::{plan, FaultKind};
