//! A tiny deterministic PRNG for fault scheduling.
//!
//! Everything the chaos harness randomizes — fault kinds, targets,
//! durations, drop rates — must be a pure function of one `u64` seed so a
//! failing run can be replayed bit-for-bit from its reported seed. The
//! vendored `rand` stub offers no seedable generator with stability
//! guarantees, so the harness carries its own SplitMix64: the standard
//! constant-incremented Weyl sequence with two xor-shift-multiply mixing
//! rounds, statistically plenty for schedule generation.

/// SplitMix64 sequence over a single seed.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// A generator whose entire output stream is determined by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> ChaosRng {
        ChaosRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform value in `[lo, hi)`; `lo < hi` required.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaosRng::new(7);
        let mut b = ChaosRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaosRng::new(1);
        let mut b = ChaosRng::new(2);
        assert!((0..16).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = ChaosRng::new(3);
        for _ in 0..256 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }
}
