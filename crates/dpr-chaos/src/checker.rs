//! The online DPR invariant checker.
//!
//! Runs *beside* a live cluster and continuously asserts the paper's
//! correctness properties from three independent observation channels:
//!
//! * the [`libdpr::audit`] tap — every commit report (token + dependency
//!   set) and every cut the finder publishes, from which the checker keeps
//!   its own shadow precedence graph;
//! * the [`dpr_telemetry`] span ring — `recovery_begin`,
//!   `worker_rollback` and `recovery_complete` events, consumed
//!   incrementally via [`dpr_telemetry::MetricsRegistry::spans_since`];
//! * the metadata store itself — the published cut, the per-shard
//!   persisted watermarks and the world-line, polled each tick.
//!
//! Checked invariants (each maps to a §9 row in `docs/PROTOCOL.md`):
//!
//! 1. **Cut monotonicity** — `read_cut()` never regresses per shard while
//!    the shard stays a member (Definition 3.1's cuts form a chain).
//! 2. **Downward closure** — every published cut, merged with the floor,
//!    is dependency-closed over the shadow graph (Definition 3.1, modulo
//!    dependencies on drained-and-removed workers — see
//!    `closed_modulo_removed`).
//! 3. **Prefix recoverability** — every `worker_rollback` restores to a
//!    version at or above the last cut the checker saw for that shard:
//!    committed operations are never lost by recovery.
//! 4. **Recovery completeness** — a `recovery_begin` naming N shards is
//!    followed by exactly N rollbacks on that world-line before
//!    `recovery_complete`, and the restored cut is itself closed.
//! 5. **Bounded cut lag** — per-shard `persisted − cut` stays under a
//!    bound except while an injected stall / membership change legitimately
//!    freezes the cut (the driver registers exemption windows).
//!
//! Exactly-once session replay (invariant 6) is driven by the ledger in
//! [`crate::driver`], which reports violations here via
//! [`InvariantChecker::report_violation`].

use dpr_core::{ShardId, Token, Version};
use dpr_metadata::{Cut, MetadataStore};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Upper bound on stored violation strings (counts keep accumulating).
const MAX_STORED_VIOLATIONS: usize = 64;

/// Tracks one in-flight recovery parsed from spans.
struct RecoveryTrack {
    world_line: u64,
    expected: usize,
    rollbacks: BTreeMap<ShardId, Version>,
}

struct CheckerState {
    /// Shadow precedence graph: token → cross-shard dependency set.
    graph: BTreeMap<Token, Vec<Token>>,
    /// Per-shard high-water of the metadata cut (pruned on membership
    /// removal).
    cut_floor: Cut,
    /// Commit reports at or below this per-shard version are pre-recovery
    /// stragglers (rolled back, or already covered) and are not added to
    /// the shadow graph; see `recovery_complete` handling.
    stale_floor: Cut,
    /// Span ring read cursor.
    span_cursor: u64,
    recovery: Option<RecoveryTrack>,
    lag_exempt_until: Option<Instant>,
    max_lag: u64,
    checks: u64,
    violation_count: u64,
    violations: Vec<String>,
}

/// The checker. Install it as the process-global [`libdpr::audit`] sink
/// and call [`InvariantChecker::tick`] periodically from a dedicated
/// thread.
pub struct InvariantChecker {
    lag_bound: u64,
    state: Mutex<CheckerState>,
    /// Audit events are buffered here by the (hot) finder threads and
    /// drained on the (cold) checker tick, keeping sink calls cheap.
    pending_commits: Mutex<Vec<(Token, Vec<Token>)>>,
    pending_cuts: Mutex<Vec<Cut>>,
}

impl InvariantChecker {
    /// A checker asserting `lag_bound` as the maximum tolerated per-shard
    /// cut lag (in versions). The span cursor starts at the current end of
    /// the ring so events from earlier runs in the same process are
    /// ignored.
    #[must_use]
    pub fn new(lag_bound: u64) -> InvariantChecker {
        let span_cursor = dpr_telemetry::global()
            .spans()
            .last()
            .map_or(0, |e| e.seq + 1);
        InvariantChecker {
            lag_bound,
            state: Mutex::new(CheckerState {
                graph: BTreeMap::new(),
                cut_floor: Cut::new(),
                stale_floor: Cut::new(),
                span_cursor,
                recovery: None,
                lag_exempt_until: None,
                max_lag: 0,
                checks: 0,
                violation_count: 0,
                violations: Vec::new(),
            }),
            pending_commits: Mutex::new(Vec::new()),
            pending_cuts: Mutex::new(Vec::new()),
        }
    }

    /// Suppress the lag-bound assertion for `window` from now (injected
    /// checkpoint stalls and membership changes legitimately freeze the
    /// cut). Lag is still *measured* during the window.
    pub fn exempt_lag(&self, window: Duration) {
        let until = Instant::now() + window;
        let mut s = self.state.lock();
        s.lag_exempt_until = Some(match s.lag_exempt_until {
            Some(existing) => existing.max(until),
            None => until,
        });
    }

    /// The driver removed `shard` from the cluster: drop its monotonicity
    /// floor and purge it from the shadow graph (its durable data was
    /// migrated away before removal, so dependencies on it are satisfied).
    pub fn note_shard_removed(&self, shard: ShardId) {
        let mut s = self.state.lock();
        s.cut_floor.remove(&shard);
        s.stale_floor.remove(&shard);
        s.graph.retain(|t, _| t.shard != shard);
        for deps in s.graph.values_mut() {
            deps.retain(|d| d.shard != shard);
        }
    }

    /// Record an externally detected violation (ledger bounds, fault
    /// execution errors, recovery timeouts).
    pub fn report_violation(&self, msg: impl Into<String>) {
        self.state.lock().record(msg.into());
    }

    /// Number of tick passes performed.
    #[must_use]
    pub fn checks(&self) -> u64 {
        self.state.lock().checks
    }

    /// Total violations detected (stored strings are capped).
    #[must_use]
    pub fn violation_count(&self) -> u64 {
        self.state.lock().violation_count
    }

    /// The stored violation descriptions.
    #[must_use]
    pub fn violations(&self) -> Vec<String> {
        self.state.lock().violations.clone()
    }

    /// Maximum per-shard cut lag (versions) observed so far.
    #[must_use]
    pub fn max_lag(&self) -> u64 {
        self.state.lock().max_lag
    }

    /// One checking pass: drain buffered audit events, consume new spans,
    /// and poll the metadata store.
    pub fn tick(&self, meta: &Arc<dyn MetadataStore>) {
        let commits = std::mem::take(&mut *self.pending_commits.lock());
        let cuts = std::mem::take(&mut *self.pending_cuts.lock());
        let spans = {
            let cursor = self.state.lock().span_cursor;
            dpr_telemetry::global().spans_since(cursor)
        };

        let mut s = self.state.lock();
        for (token, mut deps) in commits {
            let stale = s
                .stale_floor
                .get(&token.shard)
                .is_some_and(|&f| token.version <= f);
            if !stale {
                // The server's reported dependency set is an
                // over-approximation: the max-per-shard rider drained with
                // a checkpoint group rides its *lowest* version, so it can
                // carry dependencies of batches that executed above this
                // token (see `DprServer::pump_commits`). Real dependencies
                // obey `dep.version <= token.version` (the version
                // lower-bound discipline of §3.2), and that is the subset
                // min-based cuts guarantee closure for — keep only it.
                deps.retain(|d| d.version <= token.version);
                s.graph.insert(token, deps);
            }
        }

        // Invariant 2: downward closure of every published cut (merged
        // with the floor — published cuts form a chain, so the merge is
        // just the later of the two and remains a genuine cut).
        for cut in cuts {
            let mut merged = cut;
            for (shard, v) in &s.cut_floor {
                let e = merged.entry(*shard).or_insert(Version::ZERO);
                *e = (*e).max(*v);
            }
            if !closed_modulo_removed(&s.graph, &merged) {
                s.record(format!(
                    "downward closure violated: published cut {merged:?} includes a token \
                     whose dependency is outside the cut"
                ));
            }
        }

        for span in &spans {
            s.span_cursor = span.seq + 1;
            if span.target != "dpr-cluster" {
                continue;
            }
            match span.name {
                "recovery_begin" => {
                    if s.recovery.is_some() {
                        s.record(
                            "recovery began while a previous recovery was still pending"
                                .to_string(),
                        );
                    }
                    match parse_recovery_begin(&span.detail) {
                        Some((world_line, expected)) => {
                            s.recovery = Some(RecoveryTrack {
                                world_line,
                                expected,
                                rollbacks: BTreeMap::new(),
                            });
                        }
                        None => s.record(format!(
                            "unparseable recovery_begin detail: {}",
                            span.detail
                        )),
                    }
                }
                "worker_rollback" => match parse_worker_rollback(&span.detail) {
                    Some((shard, version, world_line)) => {
                        // Invariant 3: never roll back below the guaranteed
                        // cut the checker already saw published.
                        let floor = s.cut_floor.get(&shard).copied().unwrap_or(Version::ZERO);
                        if version < floor {
                            s.record(format!(
                                "prefix recoverability violated: shard {} rolled back to \
                                 v{} below the guaranteed cut v{}",
                                shard.0, version.0, floor.0
                            ));
                        }
                        let tracked = match &mut s.recovery {
                            Some(track) if track.world_line == world_line => {
                                track.rollbacks.insert(shard, version);
                                true
                            }
                            _ => false,
                        };
                        if !tracked {
                            s.record(format!(
                                "worker_rollback (shard {}, world-line {world_line}) \
                                 outside any tracked recovery",
                                shard.0
                            ));
                        }
                    }
                    None => s.record(format!(
                        "unparseable worker_rollback detail: {}",
                        span.detail
                    )),
                },
                "recovery_complete" => match s.recovery.take() {
                    Some(track) => {
                        // Invariant 4: every named shard rolled back.
                        if track.rollbacks.len() != track.expected {
                            s.record(format!(
                                "recovery completeness violated: world-line {} expected {} \
                                 rollbacks, saw {}",
                                track.world_line,
                                track.expected,
                                track.rollbacks.len()
                            ));
                        }
                        // The restored cut must itself be closed over
                        // everything reported before the crash.
                        let rec_cut: Cut = track.rollbacks.into_iter().collect();
                        if !closed_modulo_removed(&s.graph, &rec_cut) {
                            s.record(format!("recovery cut {rec_cut:?} is not dependency-closed"));
                        }
                        // Pre-recovery tokens are now either committed
                        // (≤ rec_cut) or rolled back (> rec_cut, their
                        // version numbers are skipped, never reused); both
                        // classes leave the shadow graph. Straggler reports
                        // of pre-recovery checkpoints are fenced off by the
                        // persisted watermark: post-recovery versions start
                        // strictly above it.
                        s.graph.clear();
                        if let Ok(persisted) = meta.persisted_versions() {
                            for (shard, v) in persisted {
                                let e = s.stale_floor.entry(shard).or_insert(Version::ZERO);
                                *e = (*e).max(v);
                            }
                        }
                        for (shard, v) in rec_cut {
                            let e = s.cut_floor.entry(shard).or_insert(Version::ZERO);
                            *e = (*e).max(v);
                        }
                    }
                    None => {
                        s.record("recovery_complete without a tracked recovery_begin".to_string())
                    }
                },
                _ => {}
            }
        }

        // Invariant 1: the metadata cut never regresses per shard.
        if let Ok(cut) = meta.read_cut() {
            for (shard, v) in &cut {
                let floor = s.cut_floor.get(shard).copied().unwrap_or(Version::ZERO);
                if *v < floor {
                    s.record(format!(
                        "cut monotonicity violated: shard {} regressed v{} -> v{}",
                        shard.0, floor.0, v.0
                    ));
                } else {
                    s.cut_floor.insert(*shard, *v);
                }
            }
            // Shards absent from the cut left the membership.
            let members: Vec<ShardId> = cut.keys().copied().collect();
            s.cut_floor.retain(|shard, _| members.contains(shard));
            // Drop shadow-graph entries the floor already covers: their
            // closure was asserted when their covering cut was published.
            let floor = s.cut_floor.clone();
            s.graph.retain(|t, _| {
                floor
                    .get(&t.shard)
                    .is_none_or(|&committed| t.version > committed)
            });

            // Invariant 5: bounded per-shard cut lag.
            if let Ok(persisted) = meta.persisted_versions() {
                let mut lag = 0u64;
                for (shard, p) in &persisted {
                    if let Some(c) = cut.get(shard) {
                        lag = lag.max(p.0.saturating_sub(c.0));
                    }
                }
                s.max_lag = s.max_lag.max(lag);
                let exempt =
                    s.lag_exempt_until.is_some_and(|t| Instant::now() < t) || s.recovery.is_some();
                if !exempt && lag > self.lag_bound {
                    s.record(format!(
                        "cut lag bound violated: {lag} versions > bound {}",
                        self.lag_bound
                    ));
                }
            }
        }

        s.checks += 1;
    }
}

impl CheckerState {
    fn record(&mut self, msg: String) {
        self.violation_count += 1;
        if self.violations.len() < MAX_STORED_VIOLATIONS {
            self.violations.push(msg);
        }
    }
}

impl libdpr::audit::AuditSink for InvariantChecker {
    fn commit_reported(&self, token: Token, deps: &[Token]) {
        self.pending_commits.lock().push((token, deps.to_vec()));
    }

    fn cut_published(&self, cut: &Cut) {
        self.pending_cuts.lock().push(cut.clone());
    }
}

/// Definition 3.1 closure over the shadow graph, modulo membership: a
/// dependency on a shard with no entry in `cut` refers to a worker that
/// was *removed* — `Cluster::remove_worker` migrates all of its durable
/// state away before dropping its metadata row, so every version a client
/// can still depend on is permanently durable and the dependency is
/// vacuously satisfied. (Client sessions keep carrying such shards in
/// their dependency vectors long after the removal, so the reported graph
/// legitimately references shards no cut will ever contain again.)
fn closed_modulo_removed(graph: &BTreeMap<Token, Vec<Token>>, cut: &Cut) -> bool {
    graph.iter().all(|(token, deps)| {
        let included = cut.get(&token.shard).is_some_and(|&v| token.version <= v);
        !included
            || deps.iter().all(|d| match cut.get(&d.shard) {
                Some(&v) => d.version <= v,
                None => true,
            })
    })
}

/// Parse `"[crashed shard S, ]world-line W (N shards to roll back)"`.
fn parse_recovery_begin(detail: &str) -> Option<(u64, usize)> {
    let rest = match detail.split_once("world-line ") {
        Some((_, rest)) => rest,
        None => return None,
    };
    let (wl, rest) = rest.split_once(" (")?;
    let world_line = wl.trim().parse().ok()?;
    let expected = rest.split_whitespace().next()?.parse().ok()?;
    Some((world_line, expected))
}

/// Parse `"shard S -> vV (world-line W)"`.
fn parse_worker_rollback(detail: &str) -> Option<(ShardId, Version, u64)> {
    let rest = detail.strip_prefix("shard ")?;
    let (shard, rest) = rest.split_once(" -> v")?;
    let (version, rest) = rest.split_once(" (world-line ")?;
    let world_line = rest.strip_suffix(')')?;
    Some((
        ShardId(shard.trim().parse().ok()?),
        Version(version.trim().parse().ok()?),
        world_line.trim().parse().ok()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_recovery_begin_with_and_without_blame() {
        assert_eq!(
            parse_recovery_begin("crashed shard 2, world-line 3 (4 shards to roll back)"),
            Some((3, 4))
        );
        assert_eq!(
            parse_recovery_begin("world-line 7 (2 shards to roll back)"),
            Some((7, 2))
        );
        assert_eq!(parse_recovery_begin("nonsense"), None);
    }

    #[test]
    fn parses_worker_rollback() {
        assert_eq!(
            parse_worker_rollback("shard 1 -> v42 (world-line 2)"),
            Some((ShardId(1), Version(42), 2))
        );
        assert_eq!(parse_worker_rollback("shard x -> vy (world-line z)"), None);
    }
}
