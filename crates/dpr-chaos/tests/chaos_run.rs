//! End-to-end chaos runs: seed determinism of the fault schedule and a
//! full campaign with zero invariant violations.

use dpr_chaos::{run, ChaosConfig};
use std::time::Duration;

fn short_config(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        duration: Duration::from_secs(2),
        shards: 3,
        clients: 2,
        events: 6,
        keys: 1024,
        max_extra_workers: 1,
        ..ChaosConfig::default()
    }
}

/// Satellite: two runs with the same seed execute the identical fault
/// sequence, and a healthy protocol survives both with zero violations.
#[test]
fn same_seed_runs_identical_fault_log_with_zero_violations() {
    let a = run(&short_config(42)).expect("chaos run a");
    let b = run(&short_config(42)).expect("chaos run b");
    assert_eq!(
        a.fault_log, b.fault_log,
        "fault schedule must be seed-determined"
    );
    assert!(!a.fault_log.is_empty());
    assert_eq!(
        a.violation_count, 0,
        "invariant violations in run a: {:?}",
        a.violations
    );
    assert_eq!(
        b.violation_count, 0,
        "invariant violations in run b: {:?}",
        b.violations
    );
    // The forced schedule prefix guarantees at least one recovery was
    // measured and the checker actually ran.
    assert!(a.faults.crashes >= 1);
    assert!(!a.recovery_ms.is_empty());
    assert!(a.checks > 0);
    assert!(a.completed > 0, "load must make progress under churn");
}

/// Different seeds produce different schedules (no accidental constants).
#[test]
fn different_seeds_differ() {
    let a = dpr_chaos::plan(1, 16, 3, 2);
    let b = dpr_chaos::plan(2, 16, 3, 2);
    assert_ne!(a, b);
}
