//! Calibrated latency injection for simulated devices.
//!
//! The absolute numbers below are scaled for a laptop-size reproduction; what
//! matters for the paper's figures is the *ratios*: null ≪ local ≪ cloud,
//! with cloud flushes 2–3× (or more) slower than local ones (§7.2: "we
//! observed that checkpoints over Premium SSD took 2 to 3 times longer to
//! complete than local SSD", and a DPR checkpoint on cloud storage taking
//! ~50 ms on average, §7.2 "Sensitivity to Storage Latency").

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Named storage profiles matching the paper's three backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageProfile {
    /// Completes every I/O instantaneously but exercises all code paths —
    /// the theoretical upper bound for the recoverability model (§7.2).
    Null,
    /// The VM-attached temporary disk.
    LocalSsd,
    /// Replicated, highly available cloud storage (Azure Premium SSD).
    CloudSsd,
}

impl StorageProfile {
    /// Short label used in benchmark output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StorageProfile::Null => "null",
            StorageProfile::LocalSsd => "local-ssd",
            StorageProfile::CloudSsd => "cloud-ssd",
        }
    }

    /// The latency model for this profile.
    #[must_use]
    pub fn latency(self) -> LatencyModel {
        match self {
            StorageProfile::Null => LatencyModel::zero(),
            StorageProfile::LocalSsd => LatencyModel {
                flush_fixed: Duration::from_millis(2),
                flush_per_mib: Duration::from_micros(800),
            },
            StorageProfile::CloudSsd => LatencyModel {
                // Cloud flushes carry replication round trips: the paper
                // measured DPR checkpoints of ~50 ms on Premium SSD (§7.2),
                // which at laptop data volumes is dominated by this fixed
                // cost (log flush + manifest write ≈ 40 ms per checkpoint).
                flush_fixed: Duration::from_millis(20),
                flush_per_mib: Duration::from_micros(2400),
            },
        }
    }
}

/// Flush-latency model: `flush_fixed + bytes/MiB * flush_per_mib`.
///
/// Buffered writes are free (they land in the device cache); durability is
/// paid at flush time, which is where the checkpoint critical path sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed cost per flush call (seek/replication round trip).
    pub flush_fixed: Duration,
    /// Additional cost per MiB of dirty data flushed.
    pub flush_per_mib: Duration,
}

impl LatencyModel {
    /// No injected latency.
    #[must_use]
    pub fn zero() -> LatencyModel {
        LatencyModel {
            flush_fixed: Duration::ZERO,
            flush_per_mib: Duration::ZERO,
        }
    }

    /// The latency to charge for flushing `dirty_bytes`.
    #[must_use]
    pub fn flush_cost(&self, dirty_bytes: u64) -> Duration {
        let mib = dirty_bytes as f64 / (1024.0 * 1024.0);
        self.flush_fixed + Duration::from_nanos((self.flush_per_mib.as_nanos() as f64 * mib) as u64)
    }

    /// Block the calling thread for the flush cost. The injected sleep runs
    /// on the *flusher* thread, never on operation threads — matching real
    /// devices where only the party waiting on `fsync` stalls.
    pub fn charge_flush(&self, dirty_bytes: u64) {
        let d = self.flush_cost(dirty_bytes);
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered() {
        let n = StorageProfile::Null.latency().flush_cost(1 << 20);
        let l = StorageProfile::LocalSsd.latency().flush_cost(1 << 20);
        let c = StorageProfile::CloudSsd.latency().flush_cost(1 << 20);
        assert!(n < l, "null < local");
        assert!(l < c, "local < cloud");
        // Cloud should be at least 2x local per the paper's observation.
        assert!(c.as_nanos() >= 2 * l.as_nanos());
    }

    #[test]
    fn flush_cost_scales_with_bytes() {
        let m = StorageProfile::LocalSsd.latency();
        assert!(m.flush_cost(8 << 20) > m.flush_cost(1 << 20));
        assert_eq!(m.flush_cost(0), m.flush_fixed);
    }

    #[test]
    fn zero_model_never_sleeps() {
        let m = LatencyModel::zero();
        assert_eq!(m.flush_cost(u64::MAX / 2), Duration::ZERO);
        // Must return without sleeping.
        m.charge_flush(1 << 30);
    }
}
