//! File-backed log device for real durability tests.

use crate::device::LogDevice;
use dpr_core::{DprError, Result};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`LogDevice`] backed by a real file.
///
/// Used by tests that validate actual crash-restart durability (the
/// in-memory devices are the benchmark substrate). Appends are serialized
/// through a mutex — this device is about correctness, not speed.
pub struct FileLogDevice {
    file: Mutex<File>,
    tail: AtomicU64,
    durable: AtomicU64,
}

impl FileLogDevice {
    /// Open (creating if necessary) the log at `path`. The existing file
    /// length becomes both the tail and the durable frontier.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(FileLogDevice {
            file: Mutex::new(file),
            tail: AtomicU64::new(len),
            durable: AtomicU64::new(len),
        })
    }
}

impl LogDevice for FileLogDevice {
    fn append(&self, data: &[u8]) -> Result<u64> {
        let mut f = self.file.lock();
        let addr = self.tail.load(Ordering::Acquire);
        f.seek(SeekFrom::Start(addr))?;
        f.write_all(data)?;
        self.tail.store(addr + data.len() as u64, Ordering::Release);
        Ok(addr)
    }

    fn read(&self, addr: u64, buf: &mut [u8]) -> Result<usize> {
        let tail = self.tail.load(Ordering::Acquire);
        if addr >= tail {
            return Ok(0);
        }
        let avail = ((tail - addr) as usize).min(buf.len());
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(addr))?;
        f.read_exact(&mut buf[..avail])?;
        Ok(avail)
    }

    fn flush(&self) -> Result<u64> {
        let tail = {
            let f = self.file.lock();
            f.sync_data()?;
            self.tail.load(Ordering::Acquire)
        };
        self.durable.fetch_max(tail, Ordering::SeqCst);
        Ok(self.durable.load(Ordering::Acquire))
    }

    fn tail(&self) -> u64 {
        self.tail.load(Ordering::Acquire)
    }

    fn durable_frontier(&self) -> u64 {
        self.durable.load(Ordering::Acquire)
    }

    fn truncate_before(&self, _addr: u64) -> Result<()> {
        // File-backed log keeps history; hole punching is a production
        // concern out of scope here.
        Ok(())
    }
}

impl FileLogDevice {
    /// Validate that the durable frontier never exceeds the file length.
    pub fn check_invariants(&self) -> Result<()> {
        let len = self.file.lock().metadata()?.len();
        if self.durable_frontier() > len {
            return Err(DprError::Storage(format!(
                "durable frontier {} beyond file length {len}",
                self.durable_frontier()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::read_exact;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dpr-storage-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn file_round_trip_and_reopen() {
        let path = tmp("roundtrip");
        {
            let dev = FileLogDevice::open(&path).unwrap();
            dev.append(b"persist-me").unwrap();
            dev.flush().unwrap();
            dev.check_invariants().unwrap();
        }
        // Reopen: durable data must still be there.
        let dev = FileLogDevice::open(&path).unwrap();
        assert_eq!(dev.tail(), 10);
        let mut buf = [0u8; 10];
        read_exact(&dev, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"persist-me");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reads_past_tail_are_empty() {
        let path = tmp("pasttail");
        let dev = FileLogDevice::open(&path).unwrap();
        dev.append(b"x").unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(dev.read(100, &mut buf).unwrap(), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
