//! # dpr-storage
//!
//! Storage-device abstractions for the DPR reproduction.
//!
//! The paper's evaluation (§7.2) runs each cache-store shard against three
//! backends — a *null* device that completes instantly, a *local SSD*, and a
//! replicated *cloud SSD* whose checkpoints take 2–3× longer. This crate
//! provides:
//!
//! * [`LogDevice`] — an append-only logical address space with an explicit
//!   durable frontier, used by the HybridLog and the Cassandra-like commit
//!   log. In-memory and file-backed implementations.
//! * [`BlobStore`] — named atomic blobs, used for checkpoint manifests and
//!   Redis-style snapshots.
//! * [`LatencyModel`] — injects calibrated write/flush latency so the
//!   in-memory devices behave like their physical counterparts. This is the
//!   substitution documented in DESIGN.md for hardware we do not have.
//!
//! Crash simulation: in-memory devices expose [`MemLogDevice::crash`], which
//! discards everything beyond the durable frontier — exactly what power loss
//! does to a buffered device.

#![warn(missing_docs)]

pub mod blob;
pub mod device;
pub mod file;
pub mod latency;
pub mod memory;

pub use blob::{BlobStore, FileBlobStore, MemBlobStore};
pub use device::LogDevice;
pub use file::FileLogDevice;
pub use latency::{LatencyModel, StorageProfile};
pub use memory::MemLogDevice;
