//! Named atomic blobs for checkpoint manifests and snapshots.

use crate::latency::LatencyModel;
use bytes::Bytes;
use dpr_core::{DprError, Result};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A store of named blobs with atomic, all-or-nothing writes.
///
/// Checkpoint manifests must appear either complete or not at all after a
/// crash; both implementations guarantee that (the file store via
/// write-to-temp-then-rename).
pub trait BlobStore: Send + Sync {
    /// Atomically write `data` under `name`, replacing any existing blob.
    fn put(&self, name: &str, data: &[u8]) -> Result<()>;

    /// Read the blob named `name`.
    fn get(&self, name: &str) -> Result<Option<Bytes>>;

    /// Delete the blob named `name` (idempotent).
    fn delete(&self, name: &str) -> Result<()>;

    /// List blob names with the given prefix, sorted.
    fn list(&self, prefix: &str) -> Result<Vec<String>>;
}

/// In-memory blob store with optional injected flush latency per put.
#[derive(Default)]
pub struct MemBlobStore {
    blobs: RwLock<BTreeMap<String, Bytes>>,
    latency: Option<LatencyModel>,
}

impl MemBlobStore {
    /// Zero-latency store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Store charging `latency` per put (manifests ride the same device as
    /// the data in a real deployment).
    #[must_use]
    pub fn with_latency(latency: LatencyModel) -> Self {
        MemBlobStore {
            blobs: RwLock::new(BTreeMap::new()),
            latency: Some(latency),
        }
    }
}

impl BlobStore for MemBlobStore {
    fn put(&self, name: &str, data: &[u8]) -> Result<()> {
        if let Some(l) = &self.latency {
            l.charge_flush(data.len() as u64);
        }
        self.blobs
            .write()
            .insert(name.to_owned(), Bytes::copy_from_slice(data));
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Option<Bytes>> {
        Ok(self.blobs.read().get(name).cloned())
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.blobs.write().remove(name);
        Ok(())
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        Ok(self
            .blobs
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect())
    }
}

/// Directory-backed blob store with atomic rename writes.
pub struct FileBlobStore {
    dir: PathBuf,
}

impl FileBlobStore {
    /// Open (creating) a blob directory.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(FileBlobStore {
            dir: dir.as_ref().to_owned(),
        })
    }

    fn path_for(&self, name: &str) -> Result<PathBuf> {
        if name.contains('/') || name.contains("..") {
            return Err(DprError::Invalid(format!("bad blob name {name:?}")));
        }
        Ok(self.dir.join(name))
    }
}

impl BlobStore for FileBlobStore {
    fn put(&self, name: &str, data: &[u8]) -> Result<()> {
        let final_path = self.path_for(name)?;
        let tmp = self.dir.join(format!(".tmp.{name}.{}", std::process::id()));
        std::fs::write(&tmp, data)?;
        // fsync the temp file before the rename so the rename publishes
        // complete contents.
        let f = std::fs::File::open(&tmp)?;
        f.sync_all()?;
        std::fs::rename(&tmp, &final_path)?;
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Option<Bytes>> {
        let p = self.path_for(name)?;
        match std::fs::read(&p) {
            Ok(d) => Ok(Some(Bytes::from(d))),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn delete(&self, name: &str) -> Result<()> {
        let p = self.path_for(name)?;
        match std::fs::remove_file(&p) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(prefix) && !name.starts_with(".tmp.") {
                names.push(name);
            }
        }
        names.sort();
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn BlobStore) {
        assert_eq!(store.get("a").unwrap(), None);
        store.put("a", b"one").unwrap();
        store.put("b", b"two").unwrap();
        assert_eq!(store.get("a").unwrap().unwrap().as_ref(), b"one");
        store.put("a", b"replaced").unwrap();
        assert_eq!(store.get("a").unwrap().unwrap().as_ref(), b"replaced");
        assert_eq!(
            store.list("").unwrap(),
            vec!["a".to_owned(), "b".to_owned()]
        );
        assert_eq!(store.list("b").unwrap(), vec!["b".to_owned()]);
        store.delete("a").unwrap();
        store.delete("a").unwrap(); // idempotent
        assert_eq!(store.get("a").unwrap(), None);
    }

    #[test]
    fn mem_blob_store_semantics() {
        exercise(&MemBlobStore::new());
    }

    #[test]
    fn file_blob_store_semantics() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("dpr-blob-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileBlobStore::open(&dir).unwrap();
        exercise(&store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_blob_store_rejects_path_traversal() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("dpr-blob-trav-{}", std::process::id()));
        let store = FileBlobStore::open(&dir).unwrap();
        assert!(store.put("../evil", b"x").is_err());
        assert!(store.get("a/b").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
