//! In-memory log device with latency injection and crash simulation.

use crate::device::LogDevice;
use crate::latency::{LatencyModel, StorageProfile};
use dpr_core::{DprError, Result};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

/// Page granularity of the backing store. Appends may span pages.
const PAGE_SIZE: usize = 1 << 20;

/// An in-memory [`LogDevice`].
///
/// Data lives in 1 MiB pages; `flush` charges the configured
/// [`LatencyModel`] for the dirty span and advances the durable frontier;
/// [`MemLogDevice::crash`] discards the volatile suffix, modeling power loss
/// on a buffered device.
///
/// ```
/// use dpr_storage::{LogDevice, MemLogDevice};
///
/// let dev = MemLogDevice::null();
/// dev.append(b"durable").unwrap();
/// dev.flush().unwrap();
/// dev.append(b"volatile").unwrap();
/// assert_eq!(dev.crash(), 7, "restart at the durable frontier");
/// ```
pub struct MemLogDevice {
    pages: RwLock<Vec<Box<[u8; PAGE_SIZE]>>>,
    tail: AtomicU64,
    durable: AtomicU64,
    truncated: AtomicU64,
    latency: LatencyModel,
    flush_count: AtomicU64,
}

impl MemLogDevice {
    /// Device with the given latency model.
    #[must_use]
    pub fn new(latency: LatencyModel) -> Self {
        MemLogDevice {
            pages: RwLock::new(Vec::new()),
            tail: AtomicU64::new(0),
            durable: AtomicU64::new(0),
            truncated: AtomicU64::new(0),
            latency,
            flush_count: AtomicU64::new(0),
        }
    }

    /// Device for a named profile.
    #[must_use]
    pub fn with_profile(profile: StorageProfile) -> Self {
        Self::new(profile.latency())
    }

    /// The null device: instantaneous I/O (§7.2's theoretical upper bound).
    #[must_use]
    pub fn null() -> Self {
        Self::new(LatencyModel::zero())
    }

    /// Simulate a crash: every byte beyond the durable frontier is lost.
    /// Returns the durable frontier the device restarts at.
    pub fn crash(&self) -> u64 {
        let durable = self.durable.load(Ordering::SeqCst);
        self.tail.store(durable, Ordering::SeqCst);
        durable
    }

    /// Number of flush calls served (for tests and bench accounting).
    #[must_use]
    pub fn flush_count(&self) -> u64 {
        self.flush_count.load(Ordering::Relaxed)
    }

    fn ensure_pages(&self, end: u64) {
        let need = (end as usize).div_ceil(PAGE_SIZE);
        let mut pages = self.pages.write();
        while pages.len() < need {
            pages.push(Box::new([0u8; PAGE_SIZE]));
        }
    }
}

impl LogDevice for MemLogDevice {
    fn append(&self, data: &[u8]) -> Result<u64> {
        let addr = self.tail.fetch_add(data.len() as u64, Ordering::SeqCst);
        let end = addr + data.len() as u64;
        self.ensure_pages(end);
        let pages = self.pages.read();
        let mut off = addr as usize;
        let mut rest = data;
        while !rest.is_empty() {
            let page = off / PAGE_SIZE;
            let in_page = off % PAGE_SIZE;
            let n = rest.len().min(PAGE_SIZE - in_page);
            // Safety of the unsynchronized write: each append owns a
            // disjoint [addr, end) range reserved by the fetch_add above, so
            // concurrent appends never alias. We go through a raw pointer to
            // express that disjointness.
            unsafe {
                let dst = pages[page].as_ptr() as *mut u8;
                std::ptr::copy_nonoverlapping(rest.as_ptr(), dst.add(in_page), n);
            }
            off += n;
            rest = &rest[n..];
        }
        Ok(addr)
    }

    fn read(&self, addr: u64, buf: &mut [u8]) -> Result<usize> {
        if addr < self.truncated.load(Ordering::Acquire) {
            return Err(DprError::Storage(format!("address {addr} truncated")));
        }
        let tail = self.tail.load(Ordering::Acquire);
        if addr >= tail {
            return Ok(0);
        }
        let avail = ((tail - addr) as usize).min(buf.len());
        let pages = self.pages.read();
        let mut off = addr as usize;
        let mut done = 0;
        while done < avail {
            let page = off / PAGE_SIZE;
            let in_page = off % PAGE_SIZE;
            let n = (avail - done).min(PAGE_SIZE - in_page);
            buf[done..done + n].copy_from_slice(&pages[page][in_page..in_page + n]);
            off += n;
            done += n;
        }
        Ok(avail)
    }

    fn flush(&self) -> Result<u64> {
        let tail = self.tail.load(Ordering::Acquire);
        let durable = self.durable.load(Ordering::Acquire);
        if tail > durable {
            self.latency.charge_flush(tail - durable);
            // Another flusher may have advanced past us; keep the max.
            self.durable.fetch_max(tail, Ordering::SeqCst);
        }
        self.flush_count.fetch_add(1, Ordering::Relaxed);
        Ok(self.durable.load(Ordering::Acquire))
    }

    fn tail(&self) -> u64 {
        self.tail.load(Ordering::Acquire)
    }

    fn durable_frontier(&self) -> u64 {
        self.durable.load(Ordering::Acquire)
    }

    fn truncate_before(&self, addr: u64) -> Result<()> {
        self.truncated.fetch_max(addr, Ordering::SeqCst);
        // Pages below the truncation point stay allocated in this simple
        // implementation; a production device would recycle them. The
        // HybridLog's in-memory circular buffer handles actual reuse.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::read_exact;
    use std::sync::Arc;

    #[test]
    fn append_read_round_trip() {
        let dev = MemLogDevice::null();
        let a = dev.append(b"hello").unwrap();
        let b = dev.append(b"world!").unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 5);
        let mut buf = [0u8; 6];
        read_exact(&dev, b, &mut buf).unwrap();
        assert_eq!(&buf, b"world!");
    }

    #[test]
    fn appends_spanning_pages() {
        let dev = MemLogDevice::null();
        let big = vec![0xAB; PAGE_SIZE + 123];
        let a = dev.append(&big).unwrap();
        let mut buf = vec![0u8; big.len()];
        read_exact(&dev, a, &mut buf).unwrap();
        assert_eq!(buf, big);
    }

    #[test]
    fn crash_loses_unflushed_suffix() {
        let dev = MemLogDevice::null();
        dev.append(b"durable").unwrap();
        dev.flush().unwrap();
        dev.append(b"volatile").unwrap();
        assert_eq!(dev.tail(), 15);
        let restart = dev.crash();
        assert_eq!(restart, 7);
        assert_eq!(dev.tail(), 7);
        let mut buf = [0u8; 16];
        assert_eq!(dev.read(7, &mut buf).unwrap(), 0, "lost data unreadable");
    }

    #[test]
    fn flush_advances_frontier() {
        let dev = MemLogDevice::null();
        assert_eq!(dev.durable_frontier(), 0);
        dev.append(b"abc").unwrap();
        assert_eq!(dev.durable_frontier(), 0);
        assert_eq!(dev.flush().unwrap(), 3);
        assert_eq!(dev.durable_frontier(), 3);
    }

    #[test]
    fn truncated_reads_fail() {
        let dev = MemLogDevice::null();
        dev.append(b"0123456789").unwrap();
        dev.truncate_before(5).unwrap();
        let mut buf = [0u8; 2];
        assert!(dev.read(3, &mut buf).is_err());
        assert!(dev.read(5, &mut buf).is_ok());
    }

    #[test]
    fn concurrent_appends_do_not_interleave() {
        let dev = Arc::new(MemLogDevice::null());
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let d = dev.clone();
            handles.push(std::thread::spawn(move || {
                let payload = [t; 64];
                let mut addrs = Vec::new();
                for _ in 0..200 {
                    addrs.push(d.append(&payload).unwrap());
                }
                (t, addrs)
            }));
        }
        for h in handles {
            let (t, addrs) = h.join().unwrap();
            for a in addrs {
                let mut buf = [0u8; 64];
                read_exact(dev.as_ref(), a, &mut buf).unwrap();
                assert!(buf.iter().all(|&b| b == t), "record torn at {a}");
            }
        }
        assert_eq!(dev.tail(), 8 * 200 * 64);
    }
}
