//! The append-only log-device abstraction.

use dpr_core::Result;

/// An append-only logical byte address space with an explicit durable
/// frontier.
///
/// * [`LogDevice::append`] buffers data and returns the logical address it
///   was placed at; appended data is readable immediately but **not**
///   durable.
/// * [`LogDevice::flush`] makes everything appended so far durable and
///   advances the durable frontier. This is where injected device latency is
///   charged.
/// * [`LogDevice::read`] serves reads from anywhere below the tail,
///   regardless of durability — the volatile suffix is exactly the part a
///   crash loses.
///
/// Addresses are dense: the first append lands at 0 and address
/// `tail()` is one past the last appended byte.
pub trait LogDevice: Send + Sync {
    /// Append `data`, returning its starting logical address.
    fn append(&self, data: &[u8]) -> Result<u64>;

    /// Read `buf.len()` bytes starting at `addr`. Returns the number of
    /// bytes read (short reads only at the tail).
    fn read(&self, addr: u64, buf: &mut [u8]) -> Result<usize>;

    /// Make all appended data durable; returns the new durable frontier.
    fn flush(&self) -> Result<u64>;

    /// One past the last appended byte.
    fn tail(&self) -> u64;

    /// One past the last *durable* byte.
    fn durable_frontier(&self) -> u64;

    /// Free storage below `addr` (log truncation after checkpoint GC).
    /// Reads below the truncation point may fail afterwards.
    fn truncate_before(&self, addr: u64) -> Result<()>;
}

/// Read a full buffer or fail; convenience over [`LogDevice::read`].
pub fn read_exact(dev: &dyn LogDevice, addr: u64, buf: &mut [u8]) -> Result<()> {
    let n = dev.read(addr, buf)?;
    if n != buf.len() {
        return Err(dpr_core::DprError::Storage(format!(
            "short read at {addr}: wanted {}, got {n}",
            buf.len()
        )));
    }
    Ok(())
}
