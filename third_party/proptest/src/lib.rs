//! Offline stand-in for the `proptest` crate (see `third_party/README.md`).
//!
//! Provides the API surface this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range / tuple / [`Just`] /
//! [`collection::vec`] strategies, weighted [`Union`] via [`prop_oneof!`],
//! and the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, deliberate for an offline stub:
//! - no shrinking — a failing case reports its seed and case index instead
//!   of a minimized input (the input itself is printed via `Debug`);
//! - no persistence — `.proptest-regressions` files are ignored;
//! - case generation is deterministic per test name, overridable with the
//!   `PROPTEST_SEED` environment variable for reproduction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;

/// The RNG handed to strategies during generation.
pub type TestRng = StdRng;

/// A recoverable test-case failure raised by `prop_assert!`-style macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Construct a failure with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Result type of a single generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is honoured by this stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value: fmt::Debug;

    /// Produce one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.gen_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Weighted choice among boxed strategies; built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T: fmt::Debug> Union<T> {
    /// Build from `(weight, strategy)` arms. Panics if empty or all-zero.
    #[must_use]
    pub fn new_weighted(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Union<T> {
        assert!(
            arms.iter().map(|(w, _)| u64::from(*w)).sum::<u64>() > 0,
            "prop_oneof! requires at least one arm with nonzero weight"
        );
        Union { arms }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.gen_range(0..total);
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return strat.gen_value(rng);
            }
            pick -= w;
        }
        unreachable!("weights changed mid-iteration")
    }
}

/// Box a strategy for storage in a [`Union`] (macro helper).
#[doc(hidden)]
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generate `Vec`s whose length is uniform in `len` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Names re-exported the way real proptest's prelude does.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Drive `f` over `config.cases` deterministic random cases (macro helper).
///
/// The per-test seed is derived from the test name (FNV-1a) so runs are
/// stable; set `PROPTEST_SEED` to override for reproduction.
#[doc(hidden)]
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let base = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
        Err(_) => {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        }
    };
    for case in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(base.wrapping_add(u64::from(case)));
        if let Err(e) = f(&mut rng) {
            panic!(
                "proptest `{name}` failed at case {case}/{} (seed {base}): {e}\n\
                 reproduce with PROPTEST_SEED={base} (case order is deterministic)",
                config.cases
            );
        }
    }
}

/// Define property tests. See the crate docs for supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg($config:expr)) => {};
    (@cfg($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::gen_value(&($strat), __rng);)+
                let __out: $crate::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                __out
            });
        }
        $crate::__proptest_tests! { @cfg($config) $($rest)* }
    };
}

/// Weighted choice of strategies: `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(::std::vec![
            $(($weight as u32, $crate::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(::std::vec![
            $((1u32, $crate::boxed($strat))),+
        ])
    };
}

/// Assert inside a `proptest!` body, failing the case rather than panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &($left);
        let __r = &($right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = &($left);
        let __r = &($right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __l, __r, ::std::format!($($fmt)+)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        Small(u8),
        Big(u64),
        Fixed,
    }

    #[test]
    fn union_respects_zero_weight_arms() {
        let strat = prop_oneof![
            1 => (0..10u8).prop_map(Pick::Small),
            0 => Just(Pick::Fixed),
        ];
        let mut rng = crate::TestRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(matches!(
                crate::Strategy::gen_value(&strat, &mut rng),
                Pick::Small(_)
            ));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0..100u64, 2..9)) {
            prop_assert!((2..9).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn tuples_and_oneof_compose(
            pairs in prop::collection::vec((0..4u32, 0..20u64), 0..3),
            pick in prop_oneof![
                6 => (0..64u8).prop_map(Pick::Small),
                2 => (0..32u64).prop_map(Pick::Big),
                1 => Just(Pick::Fixed),
            ],
        ) {
            prop_assert!(pairs.len() < 3);
            for (a, b) in &pairs {
                prop_assert!(*a < 4 && *b < 20);
            }
            match pick {
                Pick::Small(x) => prop_assert!(x < 64),
                Pick::Big(x) => prop_assert!(x < 32),
                Pick::Fixed => {}
            }
            prop_assert_eq!(1 + 1, 2);
        }
    }

    use rand::SeedableRng;
}
