//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository has no crates.io access (see
//! `third_party/README.md`), so the handful of external crates the workspace
//! uses are vendored as minimal API-compatible implementations. This one
//! wraps `std::sync` primitives behind `parking_lot`'s panic-free,
//! non-poisoning interface: `lock()` returns a guard directly, poisoned
//! locks are recovered transparently (a panic while holding a lock does not
//! permanently wedge unrelated threads, matching parking_lot semantics
//! closely enough for this workspace).

use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire a shared read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire an exclusive write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// Result of a timed [`Condvar`] wait.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait returned because the timeout elapsed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`Mutex`] guards.
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(guard, |g| {
            let (g, r) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Run `f` on the owned guard behind `&mut guard`, putting the returned
/// guard back in place. `std::sync::Condvar::wait` consumes the guard while
/// parking_lot's takes `&mut`; this adapter bridges the two. The
/// `ManuallyDrop` dance is safe because the slot is always refilled before
/// the function returns (and `f` — a condvar wait — does not unwind).
fn take_guard<'a, T: ?Sized>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    unsafe {
        let owned = std::ptr::read(slot);
        let replacement = f(owned);
        std::ptr::write(slot, replacement);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let t = std::thread::spawn(move || {
            let mut done = m2.lock();
            while !*done {
                cv2.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
