//! Offline stand-in for `serde_derive` (see `third_party/README.md`).
//!
//! Derives the serde stub's [`Serialize`]/[`Deserialize`] traits, which
//! render through a concrete `serde::Value` tree rather than visitors. The
//! macro parses the item's `TokenStream` directly — no `syn`/`quote`, which
//! are unavailable offline — and emits the impl as formatted source text.
//!
//! Supported shapes (everything this workspace derives on):
//! - unit / newtype / tuple / named-field structs (newtypes are transparent,
//!   matching serde's default representation);
//! - enums with unit, tuple, and named-field variants, externally tagged;
//! - the `#[serde(default)]` field attribute.
//!
//! Generics and other `#[serde(...)]` attributes are rejected with a
//! compile error rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

struct Field {
    name: String,
    default: bool,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<(String, Shape)>,
    },
}

/// Derive the serde stub's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive the serde stub's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("serde_derive: generated impl failed to parse"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error emission failed"),
    }
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Skip a run of `#[...]` attributes; returns true if any of them was
/// `#[serde(default)]`.
fn skip_attrs(iter: &mut Tokens) -> Result<bool, String> {
    let mut has_default = false;
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        let Some(TokenTree::Group(g)) = iter.next() else {
            return Err("expected [...] after #".to_string());
        };
        let mut inner = g.stream().into_iter();
        if let Some(TokenTree::Ident(head)) = inner.next() {
            if head.to_string() == "serde" {
                let Some(TokenTree::Group(args)) = inner.next() else {
                    return Err("expected (...) after #[serde".to_string());
                };
                for tt in args.stream() {
                    match &tt {
                        TokenTree::Ident(i) if i.to_string() == "default" => has_default = true,
                        TokenTree::Punct(p) if p.as_char() == ',' => {}
                        other => {
                            return Err(format!(
                                "unsupported #[serde(...)] argument `{other}`; \
                                 this offline stub only implements `default`"
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(has_default)
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(iter: &mut Tokens) {
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

fn expect_ident(iter: &mut Tokens, what: &str) -> Result<String, String> {
    match iter.next() {
        Some(TokenTree::Ident(i)) => Ok(i.to_string()),
        other => Err(format!("expected {what}, got {other:?}")),
    }
}

/// Consume tokens up to and including a top-level `,` (or end of stream),
/// treating `<`/`>` as nesting so commas inside generic arguments are not
/// field separators.
fn skip_type(iter: &mut Tokens) {
    let mut angle_depth = 0i32;
    while let Some(tt) = iter.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                iter.next();
                return;
            }
            _ => {}
        }
        iter.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let default = skip_attrs(&mut iter)?;
        if iter.peek().is_none() {
            return Ok(fields);
        }
        skip_visibility(&mut iter);
        let name = expect_ident(&mut iter, "field name")?;
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        skip_type(&mut iter);
        fields.push(Field { name, default });
    }
}

/// Count the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut fields = 0usize;
    let mut in_field = false;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => in_field = false,
            _ => {
                if !in_field {
                    fields += 1;
                    in_field = true;
                }
            }
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Shape)>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut iter)?;
        if iter.peek().is_none() {
            return Ok(variants);
        }
        let name = expect_ident(&mut iter, "variant name")?;
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                iter.next();
                Shape::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                iter.next();
                Shape::Named(parse_named_fields(g)?)
            }
            _ => Shape::Unit,
        };
        // Skip to the comma separating variants (handles discriminants).
        while let Some(tt) = iter.peek() {
            if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                iter.next();
                break;
            }
            iter.next();
        }
        variants.push((name, shape));
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    skip_attrs(&mut iter)?;
    skip_visibility(&mut iter);
    let kind = expect_ident(&mut iter, "`struct` or `enum`")?;
    let name = expect_ident(&mut iter, "item name")?;
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub derive does not support generics (on `{name}`)"
        ));
    }
    match (kind.as_str(), iter.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::Struct {
                name,
                shape: Shape::Named(parse_named_fields(g.stream())?),
            })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Item::Struct {
                name,
                shape: Shape::Tuple(count_tuple_fields(g.stream())),
            })
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Ok(Item::Struct {
            name,
            shape: Shape::Unit,
        }),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            })
        }
        (k, t) => Err(format!("cannot derive for `{k}` item (next token: {t:?})")),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `Value::Map(vec![(Str(field), ser(field)), ...])` for named fields, with
/// `prefix` selecting `self.` (structs) or bound locals (enum variants).
fn ser_named(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::serde::Value::Str(::std::string::String::from({:?})), \
                 ::serde::Serialize::serialize(&{}))",
                f.name,
                access(&f.name)
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

/// Field initializers rebuilding named fields from map entries bound to `__m`.
fn de_named(fields: &[Field], ty: &str) -> Vec<String> {
    fields
        .iter()
        .map(|f| {
            let missing = if f.default {
                "::std::default::Default::default()".to_string()
            } else {
                format!(
                    "return ::std::result::Result::Err(::serde::Error::missing_field({:?}, {ty:?}))",
                    f.name
                )
            };
            format!(
                "{name}: match ::serde::__field(__m, {name:?}) {{ \
                 ::std::option::Option::Some(__v) => ::serde::Deserialize::deserialize(__v)?, \
                 ::std::option::Option::None => {missing}, }},",
                name = f.name
            )
        })
        .collect()
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => ser_named(fields, |f| format!("self.{f}")),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, shape)| {
                    let tag = format!(
                        "::serde::Value::Str(::std::string::String::from({vname:?}))"
                    );
                    match shape {
                        Shape::Unit => format!("{name}::{vname} => {tag},"),
                        Shape::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Map(::std::vec![({tag}, \
                             ::serde::Serialize::serialize(__f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::serialize(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![({tag}, \
                                 ::serde::Value::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let map = ser_named(fields, |f| f.to_string());
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![({tag}, {map})]),",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join(" ")))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
         fn serialize(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
                Shape::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))"
                ),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                        .collect();
                    format!(
                        "let __items = __v.as_seq().ok_or_else(|| \
                         ::serde::Error::unexpected(\"sequence for {name}\", __v))?; \
                         if __items.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::Error::custom(::std::format!(\
                         \"expected {n} fields for {name}, got {{}}\", __items.len()))); }} \
                         ::std::result::Result::Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Shape::Named(fields) => format!(
                    "let __m = __v.as_map().ok_or_else(|| \
                     ::serde::Error::unexpected(\"map for {name}\", __v))?; \
                     ::std::result::Result::Ok({name} {{ {} }})",
                    de_named(fields, name).join(" ")
                ),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            // Unit variants match a bare string tag; payload variants match a
            // single-entry map keyed by the tag.
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, s)| matches!(s, Shape::Unit))
                .map(|(vname, _)| {
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .map(|(vname, shape)| match shape {
                    Shape::Unit => format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),"
                    ),
                    Shape::Tuple(1) => format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::deserialize(__payload)?)),"
                    ),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                            .collect();
                        format!(
                            "{vname:?} => {{ let __items = __payload.as_seq().ok_or_else(|| \
                             ::serde::Error::unexpected(\"sequence for {name}::{vname}\", __payload))?; \
                             if __items.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::custom(::std::format!(\
                             \"expected {n} fields for {name}::{vname}, got {{}}\", __items.len()))); }} \
                             ::std::result::Result::Ok({name}::{vname}({})) }}",
                            items.join(", ")
                        )
                    }
                    Shape::Named(fields) => format!(
                        "{vname:?} => {{ let __m = __payload.as_map().ok_or_else(|| \
                         ::serde::Error::unexpected(\"map for {name}::{vname}\", __payload))?; \
                         ::std::result::Result::Ok({name}::{vname} {{ {} }}) }}",
                        de_named(fields, &format!("{name}::{vname}")).join(" ")
                    ),
                })
                .collect();
            let body = format!(
                "match __v {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ {unit} \
                 __other => ::std::result::Result::Err(::serde::Error::unknown_variant(__other, {name:?})), }}, \
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{ \
                 let (__k, __payload) = &__entries[0]; \
                 let __tag = __k.as_str().ok_or_else(|| \
                 ::serde::Error::unexpected(\"string variant tag\", __k))?; \
                 match __tag {{ {payload} \
                 __other => ::std::result::Result::Err(::serde::Error::unknown_variant(__other, {name:?})), }} }}, \
                 __other => ::std::result::Result::Err(\
                 ::serde::Error::unexpected(\"enum {name}\", __other)), }}",
                unit = unit_arms.join(" "),
                payload = payload_arms.join(" ")
            );
            (name, body)
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{ \
         fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
         {body} }} }}"
    )
}
