//! Offline stand-in for the `crossbeam` crate (see `third_party/README.md`).
//!
//! Only the [`channel`] module is provided: an unbounded multi-producer
//! multi-consumer channel with the crossbeam API surface this workspace
//! uses (`unbounded`, cloneable `Sender`/`Receiver`, `recv_timeout`,
//! `try_recv`). Built on a `Mutex<VecDeque>` + `Condvar`; adequate for the
//! simulated in-process bus, which is not a throughput-critical component.

pub mod channel {
    //! Multi-producer multi-consumer channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have disconnected and the channel is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders have disconnected and the channel is drained.
        Disconnected,
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable (crossbeam channels are
    /// multi-consumer; each message is delivered to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, failing only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        #[must_use]
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// Whether the queue is empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .shared
                    .ready
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        }

        /// Block until a message arrives, the timeout elapses, or all
        /// senders disconnect.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Instant::now() + timeout)
        }

        /// Block until a message arrives, `deadline` passes, or all senders
        /// disconnect.
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                q = self
                    .shared
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        }

        /// Number of messages currently queued.
        #[must_use]
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// Whether the queue is empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn timeout_and_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn multi_consumer_each_message_once() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            let t1 = std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx1.recv_timeout(Duration::from_millis(50)) {
                    got.push(v);
                }
                got
            });
            let t2 = std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx2.recv_timeout(Duration::from_millis(50)) {
                    got.push(v);
                }
                got
            });
            let mut all = t1.join().unwrap();
            all.extend(t2.join().unwrap());
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }
    }
}
