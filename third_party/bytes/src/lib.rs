//! Offline stand-in for the `bytes` crate (see `third_party/README.md`).
//!
//! Provides the [`Bytes`] type with the subset of the real API this
//! workspace uses: cheap clones via `Arc`, construction from slices /
//! vectors / statics, and `Deref<Target = [u8]>` so all slice methods work.
//!
//! Two properties matter to the workspace's zero-copy hot path:
//!
//! * **Zero-copy slicing.** A long `Bytes` is a `(Arc<[u8]>, start, end)`
//!   view; [`Bytes::slice`] and `clone` only bump a reference count. The
//!   wire codec cuts keys and values out of a pooled frame body without
//!   per-op heap allocations.
//! * **Inline small buffers.** Payloads of up to [`INLINE_CAP`] bytes are
//!   stored directly in the struct — no allocation, no `Arc`. The paper's
//!   evaluation uses 8-byte keys and values (§7.1), so the common case
//!   allocates nothing *and* a tiny value stored into a shard does not pin
//!   the multi-kilobyte pooled frame body it was sliced from
//!   (`dpr_core::pool::BufferPool` recycles a backing `Arc<[u8]>` once its
//!   strong count returns to 1).

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Maximum payload stored inline (no heap allocation, no sharing).
pub const INLINE_CAP: usize = 24;

#[derive(Clone)]
enum Repr {
    /// Small payload held directly in the struct.
    Inline { len: u8, data: [u8; INLINE_CAP] },
    /// View of a shared allocation: `buf[start..end]`.
    Shared {
        buf: Arc<[u8]>,
        start: usize,
        end: usize,
    },
}

/// A cheaply cloneable, immutable byte buffer.
///
/// Small payloads (≤ [`INLINE_CAP`]) are inline; larger ones are
/// refcounted views of a shared allocation. Clones and sub-slices never
/// copy more than [`INLINE_CAP`] bytes.
#[derive(Clone)]
pub struct Bytes(Repr);

fn inline(data: &[u8]) -> Repr {
    debug_assert!(data.len() <= INLINE_CAP);
    let mut buf = [0u8; INLINE_CAP];
    buf[..data.len()].copy_from_slice(data);
    Repr::Inline {
        len: data.len() as u8,
        data: buf,
    }
}

impl Bytes {
    /// An empty buffer (no allocation).
    #[must_use]
    pub fn new() -> Bytes {
        Bytes(inline(&[]))
    }

    /// Copy `data` into a new buffer (inline when it fits, one allocation
    /// otherwise).
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        if data.len() <= INLINE_CAP {
            Bytes(inline(data))
        } else {
            let buf: Arc<[u8]> = Arc::from(data);
            let end = buf.len();
            Bytes(Repr::Shared { buf, start: 0, end })
        }
    }

    /// Wrap a static byte string (copied here; the real crate borrows).
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Zero-copy view of a window of an existing shared buffer. The view
    /// keeps the whole allocation alive regardless of the window's size
    /// (it is never inlined — callers that pool buffers rely on the `Arc`
    /// strong count to track outstanding views; *sub*-slices of the view
    /// may inline, releasing their claim on the allocation).
    ///
    /// # Panics
    /// If `range` is out of bounds of `buf`.
    #[must_use]
    pub fn from_shared(buf: Arc<[u8]>, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= buf.len());
        Bytes(Repr::Shared {
            buf,
            start: range.start,
            end: range.end,
        })
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => usize::from(*len),
            Repr::Shared { start, end, .. } => end - start,
        }
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// View of the sub-range `[begin, end)` (relative to this view).
    /// Small results are inlined (no allocation, and no claim on the
    /// backing buffer); larger results share the backing allocation,
    /// bumping only the refcount.
    ///
    /// # Panics
    /// If the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        if range.end - range.start <= INLINE_CAP {
            return Bytes(inline(&self.as_slice()[range]));
        }
        match &self.0 {
            // Unreachable in practice (inline payloads fit INLINE_CAP and
            // would have taken the branch above), kept for completeness.
            Repr::Inline { .. } => Bytes(inline(&self.as_slice()[range])),
            Repr::Shared { buf, start, .. } => Bytes(Repr::Shared {
                buf: buf.clone(),
                start: start + range.start,
                end: start + range.end,
            }),
        }
    }

    /// The viewed bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Inline { len, data } => &data[..usize::from(*len)],
            Repr::Shared { buf, start, end } => &buf[*start..*end],
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        if v.len() <= INLINE_CAP {
            Bytes(inline(&v))
        } else {
            let buf: Arc<[u8]> = Arc::from(v.into_boxed_slice());
            let end = buf.len();
            Bytes(Repr::Shared { buf, start: 0, end })
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Bytes {
    fn serialize(&self) -> serde::Value {
        serde::Value::Seq(
            self.as_slice()
                .iter()
                .map(|&b| serde::Value::U64(b.into()))
                .collect(),
        )
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Bytes {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Seq(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(u8::deserialize(item)?);
                }
                Ok(Bytes::from(out))
            }
            serde::Value::Str(s) => Ok(Bytes::copy_from_slice(s.as_bytes())),
            other => Err(serde::Error::unexpected("byte sequence", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_derefs() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Bytes::copy_from_slice(b"abc") < Bytes::copy_from_slice(b"abd"));
    }

    #[test]
    fn long_payloads_round_trip() {
        let data: Vec<u8> = (0..=255u8).collect();
        let b = Bytes::copy_from_slice(&data);
        assert_eq!(b.len(), 256);
        assert_eq!(&b[..], &data[..]);
        assert_eq!(Bytes::from(data.clone()), b);
    }

    #[test]
    fn slice_of_long_buffer_shares_the_allocation() {
        let data: Vec<u8> = (0..200u8).collect();
        let base = Bytes::copy_from_slice(&data);
        // A long sub-slice shares the backing allocation.
        let long = base.slice(10..110);
        let base_ptr = base.as_slice().as_ptr() as usize;
        let long_ptr = long.as_slice().as_ptr() as usize;
        assert_eq!(long_ptr, base_ptr + 10);
        // Sub-slicing stays correctly offset.
        let mid = long.slice(5..80);
        assert_eq!(&mid[..], &data[15..90]);
    }

    #[test]
    fn small_slices_inline_and_release_the_backing() {
        let arc: Arc<[u8]> = Arc::from(&(0..100u8).collect::<Vec<_>>()[..]);
        let view = Bytes::from_shared(arc.clone(), 0..100);
        assert_eq!(Arc::strong_count(&arc), 2);
        // An 8-byte sub-slice (a key/value) inlines: content matches, and no
        // new claim on the allocation is taken.
        let small = view.slice(16..24);
        assert_eq!(&small[..], &[16, 17, 18, 19, 20, 21, 22, 23]);
        assert_eq!(Arc::strong_count(&arc), 2, "small slice took no claim");
        // A long sub-slice does claim the allocation.
        let large = view.slice(0..50);
        assert_eq!(Arc::strong_count(&arc), 3);
        drop(view);
        drop(large);
        drop(small);
        assert_eq!(Arc::strong_count(&arc), 1, "all views returned");
    }

    #[test]
    fn from_shared_tracks_outstanding_views() {
        let arc: Arc<[u8]> = Arc::from(&b"abcdef"[..]);
        // from_shared never inlines, even when the window is small: pooling
        // code uses the strong count to detect outstanding views.
        let view = Bytes::from_shared(arc.clone(), 2..5);
        assert_eq!(&view[..], b"cde");
        assert_eq!(Arc::strong_count(&arc), 2);
        drop(view);
        assert_eq!(Arc::strong_count(&arc), 1);
    }

    #[test]
    fn inline_constructors_do_not_allocate_shared_state() {
        // 8-byte payloads (the paper's key/value size) stay inline through
        // clone and slice.
        let k = Bytes::copy_from_slice(&42u64.to_be_bytes());
        let c = k.clone();
        assert_eq!(k, c);
        assert_eq!(k.slice(0..8), k);
        assert!(matches!(k.0, Repr::Inline { .. }));
        assert!(matches!(c.0, Repr::Inline { .. }));
    }
}
