//! Offline stand-in for the `bytes` crate (see `third_party/README.md`).
//!
//! Provides the [`Bytes`] type with the subset of the real API this
//! workspace uses: cheap clones via `Arc`, construction from slices /
//! vectors / statics, and `Deref<Target = [u8]>` so all slice methods work.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
///
/// Clones share the underlying allocation (an `Arc<[u8]>`), which is what
/// the hot paths of this workspace rely on when keys and values are copied
/// into log records and wire messages.
#[derive(Clone, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    /// Copy `data` into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Wrap a static byte string (copied here; the real crate borrows).
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }

    /// Copy of the sub-range `[begin, end)` as a new buffer.
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::copy_from_slice(&self.0[range])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0[..] == other.0[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0[..].cmp(&other.0[..])
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Bytes {
    fn serialize(&self) -> serde::Value {
        serde::Value::Seq(
            self.0
                .iter()
                .map(|&b| serde::Value::U64(b.into()))
                .collect(),
        )
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Bytes {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Seq(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(u8::deserialize(item)?);
                }
                Ok(Bytes::from(out))
            }
            serde::Value::Str(s) => Ok(Bytes::copy_from_slice(s.as_bytes())),
            other => Err(serde::Error::unexpected("byte sequence", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_derefs() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Bytes::copy_from_slice(b"abc") < Bytes::copy_from_slice(b"abd"));
    }
}
