//! Offline stand-in for the `serde` crate (see `third_party/README.md`).
//!
//! Instead of serde's visitor-driven zero-copy architecture, this stub uses
//! a concrete [`Value`] tree as the data model: [`Serialize`] renders a type
//! into a `Value`, [`Deserialize`] rebuilds the type from a `&Value`, and
//! format crates (here: the `serde_json` stub) convert `Value` to and from
//! text. This is slower than real serde but behaviourally equivalent for
//! the workspace's manifests and wire frames, and it keeps the derive macro
//! small enough to hand-roll without `syn`/`quote`.
//!
//! Encoding conventions mirror `serde_json`'s defaults so that on-disk
//! manifests look like what the real crates would produce:
//! - newtype structs are transparent (`Version(7)` → `7`);
//! - structs are maps keyed by field name;
//! - enums are externally tagged (`"Rest"`, `{"Storage": "msg"}`);
//! - tuples and tuple structs with two or more fields are sequences;
//! - `Option` is `null` or the value, `Result` is `{"Ok": ..}`/`{"Err": ..}`;
//! - `Duration` is `{"secs": .., "nanos": ..}`.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::time::Duration;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`; also the encoding of `None` and unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (non-negative `i64`s serialize as [`Value::U64`]).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence (arrays, tuples, sets, multi-field tuple structs).
    Seq(Vec<Value>),
    /// An ordered list of key/value pairs (structs, maps, tagged enums).
    /// Kept as a `Vec` rather than a map so non-string keys survive until
    /// the format layer decides how to render them.
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// Borrow as `&str` if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a slice of map entries if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a slice of elements if this is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Short name of the variant, used in error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Free-form error.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }

    /// "expected X, got Y" error.
    #[must_use]
    pub fn unexpected(expected: &str, got: &Value) -> Error {
        Error {
            msg: format!("expected {expected}, got {}", got.kind()),
        }
    }

    /// A struct field was absent and has no default.
    #[must_use]
    pub fn missing_field(field: &str, ty: &str) -> Error {
        Error {
            msg: format!("missing field `{field}` of `{ty}`"),
        }
    }

    /// An enum tag did not name any known variant.
    #[must_use]
    pub fn unknown_variant(variant: &str, ty: &str) -> Error {
        Error {
            msg: format!("unknown variant `{variant}` of `{ty}`"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Render into a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
///
/// The lifetime parameter carries no borrow in this stub (everything is
/// copied out of the tree); it exists so `for<'de> Deserialize<'de>` bounds
/// written against real serde still compile.
pub trait Deserialize<'de>: Sized {
    /// Rebuild from a [`Value`] tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Look up a field by name in a struct's map entries (derive-macro helper).
#[doc(hidden)]
#[must_use]
pub fn __field<'a>(entries: &'a [(Value, Value)], name: &str) -> Option<&'a Value> {
    entries
        .iter()
        .find(|(k, _)| matches!(k, Value::Str(s) if s == name))
        .map(|(_, v)| v)
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::unexpected("bool", other)),
        }
    }
}

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    // Integer map keys arrive as strings from JSON objects.
                    Value::Str(s) => s
                        .parse::<u64>()
                        .map_err(|_| Error::unexpected("integer", v))?,
                    other => return Err(Error::unexpected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
unsigned_impls!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl<'de> Deserialize<'de> for usize {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        u64::deserialize(v).map(|n| n as usize)
    }
}

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of i64 range")))?,
                    Value::Str(s) => s
                        .parse::<i64>()
                        .map_err(|_| Error::unexpected("integer", v))?,
                    other => return Err(Error::unexpected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
signed_impls!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}
impl<'de> Deserialize<'de> for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::unexpected("float", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl<'de> Deserialize<'de> for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(t) => t.serialize(),
            None => Value::Null,
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::unexpected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$n.serialize()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                const ARITY: usize = 0 $(+ { let _ = $n; 1 })+;
                let items = v.as_seq().ok_or_else(|| Error::unexpected("tuple", v))?;
                if items.len() != ARITY {
                    return Err(Error::custom(format!(
                        "expected tuple of {ARITY}, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($t::deserialize(&items[$n])?,)+))
            }
        }
    )*};
}
tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.serialize(), v.serialize()))
                .collect(),
        )
    }
}
impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::deserialize(k)?, V::deserialize(v)?)))
                .collect(),
            other => Err(Error::unexpected("map", other)),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        // Sort rendered entries for deterministic output.
        let mut entries: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.serialize(), v.serialize()))
            .collect();
        entries.sort_by(|(a, _), (b, _)| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Map(entries)
    }
}
impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: Deserialize<'de> + std::hash::Hash + Eq,
    V: Deserialize<'de>,
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::deserialize(k)?, V::deserialize(v)?)))
                .collect(),
            other => Err(Error::unexpected("map", other)),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::unexpected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize(&self) -> Value {
        let mut rendered: Vec<Value> = self.iter().map(Serialize::serialize).collect();
        rendered.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Seq(rendered)
    }
}
impl<'de, T: Deserialize<'de> + std::hash::Hash + Eq> Deserialize<'de> for HashSet<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::unexpected("sequence", other)),
        }
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn serialize(&self) -> Value {
        match self {
            Ok(t) => Value::Map(vec![(Value::Str("Ok".to_string()), t.serialize())]),
            Err(e) => Value::Map(vec![(Value::Str("Err".to_string()), e.serialize())]),
        }
    }
}
impl<'de, T: Deserialize<'de>, E: Deserialize<'de>> Deserialize<'de> for Result<T, E> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| Error::unexpected("Ok/Err map", v))?;
        match entries {
            [(Value::Str(tag), payload)] if tag == "Ok" => T::deserialize(payload).map(Ok),
            [(Value::Str(tag), payload)] if tag == "Err" => E::deserialize(payload).map(Err),
            _ => Err(Error::unexpected("Ok/Err map", v)),
        }
    }
}

impl Serialize for Duration {
    fn serialize(&self) -> Value {
        Value::Map(vec![
            (Value::Str("secs".to_string()), Value::U64(self.as_secs())),
            (
                Value::Str("nanos".to_string()),
                Value::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}
impl<'de> Deserialize<'de> for Duration {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| Error::unexpected("duration map", v))?;
        let secs = __field(entries, "secs")
            .ok_or_else(|| Error::missing_field("secs", "Duration"))
            .and_then(u64::deserialize)?;
        let nanos = __field(entries, "nanos")
            .ok_or_else(|| Error::missing_field("nanos", "Duration"))
            .and_then(u32::deserialize)?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl<'de> Deserialize<'de> for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&42u64.serialize()), Ok(42));
        assert_eq!(i64::deserialize(&(-7i64).serialize()), Ok(-7));
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Option::<u64>::deserialize(&None::<u64>.serialize()),
            Ok(None)
        );
    }

    #[test]
    fn integer_accepts_stringified_map_key() {
        assert_eq!(u32::deserialize(&Value::Str("17".into())), Ok(17));
        assert!(u32::deserialize(&Value::Str("nope".into())).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let mut m = BTreeMap::new();
        m.insert(1u64, "a".to_string());
        m.insert(2, "b".to_string());
        assert_eq!(BTreeMap::<u64, String>::deserialize(&m.serialize()), Ok(m));

        let r: Result<u64, String> = Err("boom".to_string());
        assert_eq!(
            Result::<u64, String>::deserialize(&r.serialize()),
            Ok(r.clone())
        );

        let d = Duration::new(3, 500);
        assert_eq!(Duration::deserialize(&d.serialize()), Ok(d));

        let t = (1u64, "x".to_string());
        assert_eq!(<(u64, String)>::deserialize(&t.serialize()), Ok(t));
    }
}
