//! Offline stand-in for the `serde_json` crate (see `third_party/README.md`).
//!
//! Converts the serde stub's `Value` tree to and from JSON text. Follows
//! `serde_json` conventions where they are observable to this workspace:
//! integer map keys are rendered as quoted numbers (and parsed back by the
//! serde stub's integer impls), non-finite floats are an encode error, and
//! trailing garbage after a document is a decode error.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Encode or decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

/// Serialize `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize())?;
    Ok(out)
}

/// Serialize `value` to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::deserialize(&value)?)
}

/// Deserialize a `T` from JSON bytes.
pub fn from_slice<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::new("JSON cannot represent non-finite floats"));
            }
            // `{:?}` prints a round-trippable form that always contains a
            // `.` or exponent, so it parses back as a float.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match k {
                    Value::Str(s) => write_string(out, s),
                    // serde_json stringifies integer map keys.
                    Value::U64(n) => write_string(out, &n.to_string()),
                    Value::I64(n) => write_string(out, &n.to_string()),
                    other => {
                        return Err(Error::new(format!(
                            "JSON object keys must be strings, got {}",
                            other.kind()
                        )));
                    }
                }
                out.push(':');
                write_value(out, val)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((Value::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape {:?}",
                                other.map(|b| b as char)
                            )));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    /// Four hex digits starting at `pos`; advances past them.
    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\u{1}é".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
    }

    #[test]
    fn integer_map_keys_stringify() {
        let mut m = BTreeMap::new();
        m.insert(7u64, 9u64);
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"7\":9}");
        assert_eq!(from_str::<BTreeMap<u64, u64>>(&json).unwrap(), m);
    }

    #[test]
    fn nested_containers_round_trip() {
        let v: Vec<(u64, Vec<String>)> = vec![(1, vec!["x".into()]), (2, vec![])];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(u64, Vec<String>)>>(&json).unwrap(), v);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<u64>("42 junk").is_err());
        assert!(from_str::<Vec<u64>>("[1,2").is_err());
    }
}
