//! Offline stand-in for the `rand` crate (see `third_party/README.md`).
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, `gen_bool`, `fill_bytes`. The
//! generator is xoshiro256++ seeded through SplitMix64 — high quality and
//! deterministic, though the streams differ from the real `StdRng`
//! (ChaCha12); nothing in this workspace depends on specific streams, only
//! on determinism per seed.

use std::ops::Range;

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Seed deterministically from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;

    /// Seed from the system entropy source (stand-in: clock + ASLR mix).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9);
        let aslr = (&t as *const u64) as u64;
        Self::seed_from_u64(t ^ aslr.rotate_left(17))
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw from `[0, bound)` without modulo bias (Lemire's method
/// simplified to rejection-free multiply-shift; the tiny bias of
/// multiply-shift is irrelevant for workload generation).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample an empty range");
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<i64> {
    type Output = i64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end as u64).wrapping_sub(self.start as u64);
        self.start.wrapping_add(uniform_below(rng, span) as i64)
    }
}

impl SampleRange for Range<i32> {
    type Output = i32;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> i32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (i64::from(self.end) - i64::from(self.start)) as u64;
        (i64::from(self.start) + uniform_below(rng, span) as i64) as i32
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing extension trait, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw one uniformly distributed value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream to expand the seed into four words.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A fresh, loosely entropy-seeded [`rngs::StdRng`].
#[must_use]
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
