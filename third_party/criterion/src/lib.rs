//! Offline stand-in for the `criterion` crate (see `third_party/README.md`).
//!
//! Implements the API surface this workspace's benches use — `Criterion`
//! builder knobs, `benchmark_group`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — over a simple wall-clock
//! loop. No statistical analysis, HTML reports, or outlier rejection: each
//! `bench_function` warms up, then runs timed batches for roughly the
//! configured measurement time and prints mean per-iteration latency (plus
//! derived throughput when configured).

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-element or per-byte scaling for reported throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target total time spent measuring each benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time spent running the closure before measurement starts.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set throughput scaling for subsequent benchmarks in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            mean: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        let mean = bencher.mean;
        let mut line = format!(
            "{}/{id}: {:>12} per iter ({} iters)",
            self.name,
            format_duration(mean),
            bencher.iterations
        );
        if let Some(t) = self.throughput {
            let per_sec = |unit: u64| {
                if mean.is_zero() {
                    f64::INFINITY
                } else {
                    unit as f64 / mean.as_secs_f64()
                }
            };
            match t {
                Throughput::Elements(n) => {
                    line.push_str(&format!(", {:.3} Melem/s", per_sec(n) / 1e6));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(", {:.3} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
                }
            }
        }
        println!("{line}");
        self
    }

    /// End the group (accepted for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; runs the timed loop.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    mean: Duration,
    iterations: u64,
}

impl Bencher {
    /// Time `f`, storing the mean per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: discover a per-sample iteration count while paging
        // everything in.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut warm_iters: u64 = 0;
        while Instant::now() < warm_deadline {
            black_box(f());
            warm_iters += 1;
        }
        let elapsed_warm = self.warm_up_time.as_secs_f64();
        let per_iter = elapsed_warm / warm_iters.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64();
        let per_sample = ((budget / self.sample_size as f64 / per_iter.max(1e-9)) as u64).max(1);

        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            total += start.elapsed();
            iterations += per_sample;
        }
        self.mean = total.div_f64(iterations.max(1) as f64);
        self.iterations = iterations;
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Define a benchmark group function, mirroring criterion's macro grammar.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_positive_mean() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(1));
        g.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3)));
        g.finish();
    }

    #[test]
    fn format_duration_scales() {
        assert!(format_duration(Duration::from_nanos(500)).contains("ns"));
        assert!(format_duration(Duration::from_micros(5)).contains("µs"));
        assert!(format_duration(Duration::from_millis(5)).contains("ms"));
        assert!(format_duration(Duration::from_secs(5)).contains("s"));
    }
}
