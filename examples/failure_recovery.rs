//! Failure injection and non-blocking recovery, end to end.
//!
//! Reproduces §7.4's methodology in miniature: run a workload, inject a
//! failure (all workers roll back to the latest DPR cut on a new
//! world-line), watch the session compute its surviving prefix and resume.
//!
//! Run with: `cargo run --release --example failure_recovery`

use dpr::cluster::{Cluster, ClusterConfig, ClusterOp, OpResult};
use dpr::core::{Key, Value};
use std::time::{Duration, Instant};

fn main() {
    let cluster = Cluster::start(ClusterConfig {
        shards: 4,
        checkpoint_interval: Some(Duration::from_millis(50)),
        ..ClusterConfig::default()
    })
    .expect("start cluster");
    let mut session = cluster.open_session().expect("session");

    // Committed era: write and wait for the cut.
    for i in 0..100u64 {
        session
            .execute(vec![ClusterOp::Upsert(
                Key::from_u64(i),
                Value::from_u64(1),
            )])
            .expect("write");
    }
    session
        .wait_all_committed(cluster.cut_source(), Duration::from_secs(10))
        .expect("commit");
    let committed_era = session.stats().committed;
    println!("era 1: {committed_era} ops committed");

    // Doomed era: writes that may not commit before the failure.
    for i in 0..100u64 {
        session
            .execute(vec![ClusterOp::Upsert(
                Key::from_u64(i),
                Value::from_u64(2),
            )])
            .expect("write");
    }
    println!("era 2: 100 overwrites completed (commit pending)");

    // Failure!
    let t = Instant::now();
    cluster.inject_failure().expect("inject");
    cluster
        .wait_recovered(Duration::from_secs(10))
        .expect("recover cluster");
    println!("cluster rolled back to the DPR cut in {:?}", t.elapsed());

    // The session discovers the failure on its next call, computes its
    // surviving prefix, and resumes on the new world-line.
    let err = session.execute(vec![ClusterOp::Read(Key::from_u64(0))]);
    assert!(err.is_err(), "first post-failure call reports the failure");
    let survived = session
        .recover(Duration::from_secs(10))
        .expect("recover session");
    let stats = session.stats();
    println!(
        "session: {survived} ops survived, {} aborted — the exact prefix is known",
        stats.aborted
    );

    // Prefix consistency: every key holds either its committed value (1) or,
    // if the second write made it into the cut before the failure, 2 — but
    // never a torn mix beyond the reported prefix.
    let results = session
        .execute(
            (0..100)
                .map(|i| ClusterOp::Read(Key::from_u64(i)))
                .collect(),
        )
        .expect("read back");
    let (mut ones, mut twos) = (0, 0);
    for r in &results {
        match r {
            OpResult::Value(Some(v)) => match v.as_u64() {
                Some(1) => ones += 1,
                Some(2) => twos += 1,
                other => panic!("impossible value {other:?}"),
            },
            other => panic!("missing key: {other:?}"),
        }
    }
    println!("state after recovery: {ones} keys at v1, {twos} keys at committed v2");
    println!("world line is now {}", session.world_line());

    // Life goes on.
    session
        .execute(vec![ClusterOp::Upsert(
            Key::from_u64(0),
            Value::from_u64(3),
        )])
        .expect("post-recovery write");
    session
        .wait_all_committed(cluster.cut_source(), Duration::from_secs(10))
        .expect("post-recovery commit");
    println!("post-recovery writes commit normally");

    cluster.shutdown();
}
