//! Quickstart: start a D-FASTER cluster, write at memory speed, watch
//! prefix commits arrive asynchronously.
//!
//! Run with: `cargo run --release --example quickstart`

use dpr::cluster::{Cluster, ClusterConfig, ClusterOp};
use dpr::core::{Key, Value};
use std::time::{Duration, Instant};

fn main() {
    // A 4-shard D-FASTER deployment: null storage profile, 25 ms group
    // commits, approximate DPR cut finding.
    let config = ClusterConfig {
        shards: 4,
        checkpoint_interval: Some(Duration::from_millis(25)),
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config).expect("start cluster");
    let mut session = cluster.open_session().expect("open session");

    // Phase 1: operations complete immediately, before they are durable.
    let t0 = Instant::now();
    for round in 0..10u64 {
        let ops: Vec<ClusterOp> = (0..100)
            .map(|i| ClusterOp::Upsert(Key::from_u64(round * 100 + i), Value::from_u64(i)))
            .collect();
        session.execute(ops).expect("execute");
    }
    let completed = session.stats();
    println!(
        "completed {} ops in {:?} (all uncommitted at completion time)",
        completed.completed,
        t0.elapsed()
    );

    // Phase 2: commits arrive asynchronously as the DPR cut advances.
    let t1 = Instant::now();
    session
        .wait_all_committed(cluster.cut_source(), Duration::from_secs(10))
        .expect("commit");
    println!(
        "all {} ops committed {:?} after completion — commit is decoupled from completion",
        session.stats().committed,
        t1.elapsed()
    );

    // Phase 3: reads see the newest data regardless of commit status.
    let results = session
        .execute(vec![ClusterOp::Read(Key::from_u64(950))])
        .expect("read");
    println!("read k950 -> {:?}", results[0]);

    cluster.shutdown();
}
