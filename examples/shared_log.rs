//! The Kafka-like shared log as a DPR StateObject (`dpr-log`).
//!
//! Producers enqueue at memory speed; consumers see entries before they
//! commit; a failure rolls back both the uncommitted entries AND the
//! consumer offsets that read them, so re-delivery is exact.
//!
//! Run with: `cargo run --release --example shared_log`

use bytes::Bytes;
use dpr::core::{ShardId, Version};
use dpr::protocol::StateObject;
use dpr::storage::{MemBlobStore, MemLogDevice};
use dpr_log::{ConsumerId, SharedLog};
use std::sync::Arc;

fn main() {
    let device = Arc::new(MemLogDevice::null());
    let blobs = Arc::new(MemBlobStore::new());
    let log = SharedLog::new(ShardId(0), device.clone(), blobs.clone());

    // Producer: 10 committed messages, then 5 volatile ones.
    for i in 0..10u64 {
        log.enqueue(Bytes::from(format!("msg-{i}")));
    }
    log.request_commit(None);
    log.take_commits(); // drives the flush + manifest
    println!("committed 10 entries at {}", log.durable_version());

    for i in 10..15u64 {
        log.enqueue(Bytes::from(format!("msg-{i}")));
    }
    // Consumer reads ALL 15 — including the 5 uncommitted (that's the DPR
    // speedup: no commit wait on the hot path).
    let (batch, _) = log.poll(ConsumerId(1), 100);
    println!(
        "consumer read {} entries, {} of them uncommitted",
        batch.len(),
        batch.len() - 10
    );

    // Crash: volatile entries are gone.
    device.crash();
    let log = SharedLog::recover(ShardId(0), device, blobs, None).expect("recover");
    println!(
        "after crash: {} entries survive (committed prefix), consumer offset rolled back to {}",
        log.len(),
        log.consumer_offset(ConsumerId(1))
    );
    assert_eq!(log.len(), 10);
    assert_eq!(log.durable_version(), Version(1));

    // The consumer re-polls exactly the entries whose reads were lost.
    let (redelivered, _) = log.poll(ConsumerId(1), 100);
    println!(
        "re-delivered {} committed entries — no message lost, none skipped",
        redelivered.len()
    );
}
