//! Observability demo: run a small D-FASTER cluster with telemetry on, then
//! dump the metrics report — commit-latency histogram, CPR checkpoint phase
//! timings, cut lag, and the protocol-event log.
//!
//! Run with: `cargo run --release --example observability`
//!
//! The metric catalog, with units and paper cross-references, is in
//! `docs/OBSERVABILITY.md`; this example is its worked companion.

use dpr::cluster::{Cluster, ClusterConfig, ClusterOp};
use dpr::core::{Key, Value};
use std::time::Duration;

fn main() {
    // Turn on clock-based telemetry (timers + spans) before any work runs.
    dpr::telemetry::set_enabled(true);

    let config = ClusterConfig {
        shards: 2,
        checkpoint_interval: Some(Duration::from_millis(20)),
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config).expect("start cluster");
    let mut session = cluster.open_session().expect("open session");

    // A few thousand upserts: operations complete at memory speed and
    // commit asynchronously as checkpoints seal versions and the DPR cut
    // advances — exactly the gap dpr_server_commit_latency_us measures.
    for i in 0..3_000u64 {
        session
            .execute(vec![ClusterOp::Upsert(
                Key::from_u64(i % 512),
                Value::from_u64(i),
            )])
            .expect("execute batch");
    }
    session
        .wait_all_committed(cluster.cut_source(), Duration::from_secs(10))
        .expect("wait for commit");

    // One failure + recovery so the rollback and recovery metrics and the
    // recovery span sequence are populated too.
    cluster.inject_failure().expect("inject failure");
    cluster
        .wait_recovered(Duration::from_secs(10))
        .expect("recovery");

    cluster.shutdown();

    let report = dpr::telemetry::global().render_table();
    println!("{report}");

    // The three headline signals this demo exists to show.
    for metric in [
        "dpr_server_commit_latency_us",
        "dpr_faster_checkpoint_total_us",
        "dpr_finder_cut_lag_versions",
    ] {
        assert!(report.contains(metric), "missing {metric} in report");
    }
}
