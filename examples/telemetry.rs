//! Cloud telemetry pipeline — the paper's Example 1.
//!
//! Three services share a D-FASTER cluster:
//!
//! * an **ingest** service inserts raw telemetry readings;
//! * an **aggregator** continuously reads *uncommitted* readings and writes
//!   back per-key aggregates — DPR guarantees the aggregates never commit
//!   without the contributing data committing as well (the aggregator's
//!   session makes the dependency explicit);
//! * a **dashboard** service reads aggregates and serves tentative results
//!   at low latency, while separately tracking which prefix is committed.
//!
//! Run with: `cargo run --release --example telemetry`

use dpr::cluster::{Cluster, ClusterConfig, ClusterOp, OpResult};
use dpr::core::{Key, Value};
use std::time::Duration;

/// Raw readings live at keys [0, 1000); per-sensor aggregates at 10_000+id.
const SENSORS: u64 = 8;
const READINGS_PER_SENSOR: u64 = 50;

fn reading_key(sensor: u64, seq: u64) -> Key {
    Key::from_u64(sensor * READINGS_PER_SENSOR + seq)
}

fn aggregate_key(sensor: u64) -> Key {
    Key::from_u64(10_000 + sensor)
}

fn main() {
    let cluster = Cluster::start(ClusterConfig {
        shards: 4,
        checkpoint_interval: Some(Duration::from_millis(20)),
        ..ClusterConfig::default()
    })
    .expect("start cluster");

    // --- ingest service: pour readings in, do not wait for durability.
    let mut ingest = cluster.open_session().expect("ingest session");
    for sensor in 0..SENSORS {
        for seq in 0..READINGS_PER_SENSOR {
            ingest
                .execute(vec![ClusterOp::Upsert(
                    reading_key(sensor, seq),
                    Value::from_u64(sensor + seq), // the "measurement"
                )])
                .expect("ingest");
        }
    }
    println!(
        "ingest: {} readings completed (commit pending in background)",
        ingest.stats().completed
    );

    // --- aggregator: reads uncommitted readings, writes sums back through
    // the SAME session — so each aggregate causally depends on the readings
    // it consumed and can never commit without them.
    let mut aggregator = cluster.open_session().expect("aggregator session");
    for sensor in 0..SENSORS {
        let reads: Vec<ClusterOp> = (0..READINGS_PER_SENSOR)
            .map(|seq| ClusterOp::Read(reading_key(sensor, seq)))
            .collect();
        let results = aggregator.execute(reads).expect("read readings");
        let sum: u64 = results
            .iter()
            .filter_map(|r| match r {
                OpResult::Value(Some(v)) => v.as_u64(),
                _ => None,
            })
            .sum();
        aggregator
            .execute(vec![ClusterOp::Upsert(
                aggregate_key(sensor),
                Value::from_u64(sum),
            )])
            .expect("write aggregate");
    }
    println!("aggregator: {} sensor aggregates written", SENSORS);

    // --- dashboard: serve tentative values immediately...
    let mut dashboard = cluster.open_session().expect("dashboard session");
    let tentative = dashboard
        .execute(
            (0..SENSORS)
                .map(|s| ClusterOp::Read(aggregate_key(s)))
                .collect(),
        )
        .expect("dashboard read");
    println!(
        "dashboard (tentative, sub-ms): {} aggregates visible",
        tentative.len()
    );
    for (s, r) in tentative.iter().enumerate() {
        if let OpResult::Value(Some(v)) = r {
            let expected: u64 = (0..READINGS_PER_SENSOR).map(|q| s as u64 + q).sum();
            assert_eq!(v.as_u64(), Some(expected), "sensor {s} aggregate");
        }
    }

    // ...and depict the committed view as it becomes available lazily.
    aggregator
        .wait_all_committed(cluster.cut_source(), Duration::from_secs(10))
        .expect("aggregates commit");
    ingest
        .wait_all_committed(cluster.cut_source(), Duration::from_secs(10))
        .expect("readings commit");
    println!(
        "committed view: ingest={} aggregator={} ops durable — aggregates \
         committed only after their inputs",
        ingest.stats().committed,
        aggregator.stats().committed,
    );

    cluster.shutdown();
}
