//! Serverless workflow — the paper's Example 2.
//!
//! A chain of operators (as in Azure Durable Functions / Temporal) passes
//! messages through a shared cache-store acting as a persistent queue.
//! Naively, every enqueue must wait for a commit; with DPR, a downstream
//! operator dequeues its input *before* the enqueue commits, so the chain
//! runs at memory speed, while the final externally visible result is only
//! exposed once its whole causal prefix is durable.
//!
//! Run with: `cargo run --release --example serverless_workflow`

use dpr::cluster::{Cluster, ClusterConfig, ClusterOp, OpResult};
use dpr::core::{Key, Value};
use std::time::{Duration, Instant};

const STAGES: u64 = 5;
const ITEMS: u64 = 20;

/// Queue slot for `item` between stage `s` and `s+1`.
fn slot(stage: u64, item: u64) -> Key {
    Key::from_u64(stage * 1_000 + item)
}

fn main() {
    let cluster = Cluster::start(ClusterConfig {
        shards: 4,
        checkpoint_interval: Some(Duration::from_millis(25)),
        ..ClusterConfig::default()
    })
    .expect("start cluster");

    let t0 = Instant::now();

    // Each stage is an operator with its own session; stage s dequeues from
    // queue s-1 and enqueues to queue s (each value gets +1 so we can check
    // the pipeline end to end). Crucially, NO stage waits for commit.
    // Source stage:
    let mut source = cluster.open_session().expect("source");
    for item in 0..ITEMS {
        source
            .execute(vec![ClusterOp::Upsert(
                slot(0, item),
                Value::from_u64(item),
            )])
            .expect("enqueue");
    }

    for stage in 1..STAGES {
        let mut operator = cluster.open_session().expect("operator");
        for item in 0..ITEMS {
            // Dequeue: reads the upstream enqueue, possibly uncommitted.
            let input = operator
                .execute(vec![ClusterOp::Read(slot(stage - 1, item))])
                .expect("dequeue");
            let v = match &input[0] {
                OpResult::Value(Some(v)) => v.as_u64().unwrap(),
                other => panic!("missing queue item: {other:?}"),
            };
            // Process + enqueue downstream.
            operator
                .execute(vec![ClusterOp::Upsert(
                    slot(stage, item),
                    Value::from_u64(v + 1),
                )])
                .expect("enqueue");
        }
        println!("stage {stage}: processed {ITEMS} items (no commit waits)");
    }
    let pipeline_latency = t0.elapsed();

    // The sink exposes results to the outside world — THIS is where the
    // application chooses to wait for the lazy commit.
    let mut sink = cluster.open_session().expect("sink");
    let outputs = sink
        .execute(
            (0..ITEMS)
                .map(|i| ClusterOp::Read(slot(STAGES - 1, i)))
                .collect(),
        )
        .expect("sink read");
    for (i, r) in outputs.iter().enumerate() {
        match r {
            OpResult::Value(Some(v)) => {
                assert_eq!(v.as_u64(), Some(i as u64 + STAGES - 1), "item {i}")
            }
            other => panic!("missing output {i}: {other:?}"),
        }
    }
    let t1 = Instant::now();
    sink.wait_all_committed(cluster.cut_source(), Duration::from_secs(10))
        .expect("sink commit");
    println!(
        "pipeline of {STAGES} stages x {ITEMS} items ran in {pipeline_latency:?}; \
         externally visible result committed {:?} later",
        t1.elapsed()
    );
    println!(
        "every dequeue observed its upstream enqueue before commit — \
         prefix recoverability made that safe"
    );

    cluster.shutdown();
}
